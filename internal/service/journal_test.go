package service_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/journal"
	"repro/internal/service"
	"repro/internal/workload"
)

// dmlWorkload mixes SELECTs with an UPDATE so a derivation-enabled session
// is guaranteed at least one per-reason fallback (DML events always fall
// back to a real optimizer call).
func dmlWorkload() []workload.Statement {
	return []workload.Statement{
		{SQL: "SELECT id FROM t WHERE x = 42", Weight: 1},
		{SQL: "SELECT a, COUNT(*) FROM t WHERE x < 100 GROUP BY a", Weight: 1},
		{SQL: "SELECT SUM(amt) FROM t WHERE a = 7", Weight: 1},
		{SQL: "UPDATE t SET amt = 0 WHERE id = 17", Weight: 1},
	}
}

// TestJournalEndpoint checks GET /sessions/{id}/journal: NDJSON of typed
// decision events covering the pipeline's decision points, the ?kind=
// filter, and the error paths.
func TestJournalEndpoint(t *testing.T) {
	_, ts, _ := newTestAPI(t, 2)

	resp, snap := postJSON(t, ts.URL+"/sessions", map[string]any{
		"database":   "db",
		"statements": dmlWorkload(),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, snap.ID)
	if final.State != service.StateDone {
		t.Fatalf("state %s (error %q)", final.State, final.Error)
	}

	jr, err := http.Get(ts.URL + "/sessions/" + snap.ID + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if ct := jr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("journal Content-Type = %q", ct)
	}
	kinds := map[journal.Kind]int{}
	lastSeq := int64(0)
	sc := bufio.NewScanner(jr.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e journal.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("journal not sequence-ordered: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		kinds[e.Kind]++
	}
	for _, k := range []journal.Kind{
		journal.KindPhase, journal.KindQuery, journal.KindCandidate, journal.KindStep,
	} {
		if kinds[k] == 0 {
			t.Errorf("journal stream has no %s events (kinds: %v)", k, kinds)
		}
	}

	// ?kind= narrows the stream; an unknown kind is a 400.
	fr, err := http.Get(ts.URL + "/sessions/" + snap.ID + "/journal?kind=phase")
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Body.Close()
	fsc := bufio.NewScanner(fr.Body)
	for fsc.Scan() {
		var e journal.Event
		if err := json.Unmarshal(fsc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Kind != journal.KindPhase {
			t.Fatalf("?kind=phase leaked a %s event", e.Kind)
		}
	}
	br, err := http.Get(ts.URL + "/sessions/" + snap.ID + "/journal?kind=bogus")
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d, want 400", br.StatusCode)
	}
	nf, err := http.Get(ts.URL + "/sessions/nope/journal")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", nf.StatusCode)
	}
}

// TestExplainEndpoint checks GET /sessions/{id}/explain reconstructs
// provenance for every recommended structure of a terminal session, and
// that a still-running session gets a 409.
func TestExplainEndpoint(t *testing.T) {
	_, ts, gate := newTestAPI(t, 2)

	// A gated (still running) session: explain must refuse with 409.
	resp, running := postJSON(t, ts.URL+"/sessions", map[string]any{"database": "db-gated", "statements": dmlWorkload()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create gated: %d", resp.StatusCode)
	}
	<-gate.reached
	conflict, err := http.Get(ts.URL + "/sessions/" + running.ID + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	conflict.Body.Close()
	if conflict.StatusCode != http.StatusConflict {
		t.Fatalf("explain of a running session: status %d, want 409", conflict.StatusCode)
	}
	close(gate.release)
	waitTerminal(t, ts.URL, running.ID)

	resp, snap := postJSON(t, ts.URL+"/sessions", map[string]any{
		"database":   "db",
		"statements": dmlWorkload(),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, snap.ID)
	if final.State != service.StateDone || final.Result == nil {
		t.Fatalf("state %s, result %v", final.State, final.Result)
	}
	if len(final.Result.Structures) == 0 {
		t.Fatal("no structures recommended; explain test exercises nothing")
	}

	er, err := http.Get(ts.URL + "/sessions/" + snap.ID + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	if er.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d", er.StatusCode)
	}
	var exp journal.Explanation
	if err := json.NewDecoder(er.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	if exp.Session != snap.ID {
		t.Errorf("explanation session = %q, want %q", exp.Session, snap.ID)
	}
	if len(exp.Structures) != len(final.Result.Structures) {
		t.Fatalf("explained %d structures, recommendation has %d", len(exp.Structures), len(final.Result.Structures))
	}
	for _, p := range exp.Structures {
		if p.AdmittedBy == "" {
			t.Errorf("structure %s has no recorded admission", p.Structure)
		}
		if len(p.BenefitingQueries) == 0 {
			t.Errorf("structure %s has no benefiting queries", p.Structure)
		}
	}
}

// TestProgressStreamDeriveFields asserts the NDJSON progress stream and the
// terminal snapshot surface the derivation layer's work: derivedEvals and
// the per-reason deriveFallbacks breakdown (the workload's UPDATE guarantees
// at least one "dml" fallback).
func TestProgressStreamDeriveFields(t *testing.T) {
	_, ts, _ := newTestAPI(t, 2)

	resp, snap := postJSON(t, ts.URL+"/sessions", map[string]any{
		"database":   "db",
		"statements": dmlWorkload(),
		"options":    map[string]any{"derive": "on"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, snap.ID)
	if final.State != service.StateDone || final.Result == nil {
		t.Fatalf("state %s (error %q)", final.State, final.Error)
	}

	if final.Result.DerivedEvals == 0 {
		t.Error("terminal Result.DerivedEvals = 0 with derive on")
	}
	if final.Result.DeriveFallbacks["dml"] == 0 {
		t.Errorf("terminal Result.DeriveFallbacks = %v, want a dml entry (workload has an UPDATE)", final.Result.DeriveFallbacks)
	}

	// The event stream's progress lines carry the same fields live.
	er, err := http.Get(ts.URL + "/sessions/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	sawDerived, sawFallbacks := false, false
	sc := bufio.NewScanner(er.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Progress struct {
				DerivedEvals    int64            `json:"derivedEvals"`
				DeriveFallbacks map[string]int64 `json:"deriveFallbacks"`
			} `json:"progress"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Progress.DerivedEvals > 0 {
			sawDerived = true
		}
		if ev.Progress.DeriveFallbacks["dml"] > 0 {
			sawFallbacks = true
		}
	}
	if !sawDerived {
		t.Error("no progress event carried derivedEvals > 0")
	}
	if !sawFallbacks {
		t.Error("no progress event carried a dml deriveFallbacks entry")
	}
}

// decodeTrace fetches a session's Chrome trace export and validates the
// self-time invariants: complete JSON, only closed ("X") span events, every
// span's selfUs in [0, dur], and otherData.selfTimeUs summing to exactly
// the per-span selfUs total.
func decodeTrace(t *testing.T, ts *httptest.Server, id string) (spans int, cats map[string]int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/sessions/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData struct {
			SelfTimeUs map[string]int64 `json:"selfTimeUs"`
			Spans      int              `json:"spans"`
		} `json:"otherData"`
	}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("session %s trace is not valid JSON: %v", id, err)
	}
	if dec.More() {
		t.Fatalf("session %s trace has trailing data after the JSON document", id)
	}

	cats = map[string]int{}
	var perSpanSelf int64
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue // process-name metadata
		}
		if e.Ph != "X" {
			t.Fatalf("span %s/%s exported as ph=%q; a truncated session must still close every span", e.Cat, e.Name, e.Ph)
		}
		cats[e.Cat]++
		self, ok := e.Args["selfUs"].(float64)
		if !ok {
			t.Fatalf("span %s/%s has no selfUs arg: %v", e.Cat, e.Name, e.Args)
		}
		if self < 0 || int64(self) > e.Dur {
			t.Fatalf("span %s/%s selfUs %v outside [0, dur=%d]", e.Cat, e.Name, self, e.Dur)
		}
		perSpanSelf += int64(self)
	}
	var aggSelf int64
	for _, v := range doc.OtherData.SelfTimeUs {
		if v < 0 {
			t.Fatalf("selfTimeUs aggregate negative: %v", doc.OtherData.SelfTimeUs)
		}
		aggSelf += v
	}
	if aggSelf != perSpanSelf {
		t.Fatalf("otherData.selfTimeUs sums to %d, per-span selfUs to %d", aggSelf, perSpanSelf)
	}
	return doc.OtherData.Spans, cats
}

// TestTraceExportCancelledSession cancels a session parked mid-search and
// checks its trace export is complete and self-consistent (satellite: trace
// export on abnormal terminations).
func TestTraceExportCancelledSession(t *testing.T) {
	_, ts, gate := newTestAPI(t, 2)

	var stmts []workload.Statement
	for i := 0; i < 20; i++ {
		stmts = append(stmts,
			workload.Statement{SQL: fmt.Sprintf("SELECT id FROM t WHERE x = %d", i*31%2000)},
			workload.Statement{SQL: fmt.Sprintf("SELECT SUM(amt) FROM t WHERE a = %d", i%100)},
		)
	}
	resp, snap := postJSON(t, ts.URL+"/sessions", map[string]any{
		"database":   "db-gated",
		"statements": stmts,
		"options":    map[string]any{"noCompression": true, "skipReports": true},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	<-gate.reached

	// Cancel the parked session, then release the gate so the parked
	// what-if call can unwind.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+snap.ID, nil)
	go func() { close(gate.release) }()
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	final := waitTerminal(t, ts.URL, snap.ID)
	if final.State != service.StateCancelled && final.State != service.StateDone {
		t.Fatalf("state %s after cancel", final.State)
	}

	spans, cats := decodeTrace(t, ts, snap.ID)
	if spans == 0 || cats["session"] == 0 {
		t.Fatalf("cancelled session trace incomplete: %d spans, cats %v", spans, cats)
	}
}

// TestTraceExportDegradedSession forces the circuit breaker open with a
// high fault rate and checks the degraded session's trace export holds the
// same invariants.
func TestTraceExportDegradedSession(t *testing.T) {
	m := service.NewManager(2)
	if err := m.Register(&service.Backend{Name: "db", Tuner: smallServer(t), DefaultWorkload: slowWorkload(t)}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"options":{"faultSpec":%q}}`, "seed=7;whatif:error:0.25")
	resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, snap.ID)
	if final.State != service.StateDone {
		t.Fatalf("state %s (error %q)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.StopReason == "" {
		t.Skipf("session survived the fault rate (result %+v); nothing degraded to assert", final.Result)
	}

	spans, cats := decodeTrace(t, ts, snap.ID)
	if spans == 0 || cats["session"] == 0 || cats["whatif"] == 0 {
		t.Fatalf("degraded session trace incomplete: %d spans, cats %v", spans, cats)
	}
}
