package service_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

// promValues parses a Prometheus text exposition and returns every sample
// whose metric name (including _count/_sum/_bucket suffixes) matches name,
// as rendered-label-string → value.
func promValues(tb testing.TB, body, name string) map[string]float64 {
	tb.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			tb.Fatalf("malformed exposition line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		metric, labels := series, ""
		if br := strings.IndexByte(series, '{'); br >= 0 {
			metric, labels = series[:br], series[br:]
		}
		if metric != name {
			continue
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			tb.Fatalf("bad value in line %q: %v", line, err)
		}
		out[labels] = v
	}
	return out
}

// runSession creates a session over the HTTP API and waits for it to finish,
// returning its ID and terminal snapshot.
func runSession(tb testing.TB, ts *httptest.Server, body string) (string, service.Snapshot) {
	tb.Helper()
	resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		tb.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		tb.Fatalf("POST /sessions: status %d, error %q", resp.StatusCode, snap.Error)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/sessions/" + snap.ID)
		if err != nil {
			tb.Fatal(err)
		}
		if err := json.NewDecoder(r2.Body).Decode(&snap); err != nil {
			tb.Fatal(err)
		}
		r2.Body.Close()
		if snap.State.Terminal() {
			return snap.ID, snap
		}
		if time.Now().After(deadline) {
			tb.Fatalf("session %s did not finish (state %s)", snap.ID, snap.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMetricsExposition checks the acceptance criterion of the /metrics
// endpoint: after a completed session, the default representation is valid
// Prometheus text whose what-if latency histogram count equals the
// service's exact what-if accounting, and the JSON snapshot is still
// reachable via content negotiation and /metrics.json.
func TestMetricsExposition(t *testing.T) {
	m := service.NewManager(2)
	srv := smallServer(t)
	if err := m.Register(&service.Backend{Name: "db", Tuner: srv, DefaultWorkload: quickWorkload(t, 1)}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	_, snap := runSession(t, ts, `{"database":"db"}`)
	if snap.State != service.StateDone {
		t.Fatalf("session state = %s, want done (error %q)", snap.State, snap.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics Content-Type = %q, want text/plain exposition", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	resp.Body.Close()
	body := sb.String()

	var histCount float64
	for _, v := range promValues(t, body, "dta_whatif_call_duration_seconds_count") {
		histCount += v
	}
	mx := m.Metrics()
	if mx.WhatIfCalls == 0 {
		t.Fatal("Metrics().WhatIfCalls = 0 after a completed session")
	}
	if int64(histCount) != mx.WhatIfCalls {
		t.Fatalf("what-if latency histogram count = %v, want Metrics().WhatIfCalls = %d", histCount, mx.WhatIfCalls)
	}
	if done := promValues(t, body, "dta_sessions_finished_total")[`{state="done"}`]; done != 1 {
		t.Fatalf(`dta_sessions_finished_total{state="done"} = %v, want 1`, done)
	}
	if got := promValues(t, body, "dta_backend_whatif_calls")[`{backend="db"}`]; int64(got) != srv.WhatIfCallCount() {
		t.Fatalf("dta_backend_whatif_calls = %v, want server count %d", got, srv.WhatIfCallCount())
	}
	for _, want := range []string{
		"# TYPE dta_whatif_call_duration_seconds histogram",
		"dta_whatif_call_duration_seconds_bucket",
		"dta_phase_duration_seconds_count",
		"dta_candidates_per_query_count",
		"dta_sessions_created_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}

	// A derivation-enabled session surfaces the dta_derive_* family and the
	// cost cache's fourth outcome ("derived") in the same scrape.
	_, snap2 := runSession(t, ts, `{"database":"db","options":{"derive":"verify"}}`)
	if snap2.State != service.StateDone {
		t.Fatalf("derive session state = %s, want done (error %q)", snap2.State, snap2.Error)
	}
	resp3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	derived := string(raw)
	for _, want := range []string{
		`dta_cost_cache_requests_total{outcome="derived"}`,
		"dta_derive_atoms_total",
		"dta_derive_derivations_total",
		"dta_derive_fallbacks_total",
		`dta_derive_verify_total{result="match"}`,
	} {
		if !strings.Contains(derived, want) {
			t.Errorf("derive exposition is missing %q", want)
		}
	}
	if vals := promValues(t, derived, "dta_derive_verify_total"); vals[`{result="mismatch"}`] != 0 {
		t.Errorf("verify mismatches on a healthy backend: %v", vals)
	}

	// Content negotiation: Accept: application/json yields the JSON view
	// (re-read the totals: the derive session above added calls).
	mx = m.Metrics()
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var negotiated service.Metrics
	if err := json.NewDecoder(resp2.Body).Decode(&negotiated); err != nil {
		t.Fatalf("Accept: application/json did not produce JSON: %v", err)
	}
	resp2.Body.Close()
	if negotiated.WhatIfCalls != mx.WhatIfCalls {
		t.Fatalf("negotiated JSON WhatIfCalls = %d, want %d", negotiated.WhatIfCalls, mx.WhatIfCalls)
	}
}

// TestSessionTraceExport checks GET /sessions/{id}/trace returns Chrome
// trace-event JSON covering at least the session, phase, and what-if span
// levels of a completed session.
func TestSessionTraceExport(t *testing.T) {
	m := service.NewManager(2)
	if err := m.Register(&service.Backend{Name: "db", Tuner: smallServer(t), DefaultWorkload: quickWorkload(t, 2)}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	id, snap := runSession(t, ts, `{"database":"db"}`)
	if snap.State != service.StateDone {
		t.Fatalf("session state = %s, want done", snap.State)
	}

	resp, err := http.Get(ts.URL + "/sessions/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			cats[e.Cat]++
		}
	}
	for _, want := range []string{"session", "phase", "whatif"} {
		if cats[want] == 0 {
			t.Errorf("trace has no %q spans (categories: %v)", want, cats)
		}
	}
	if cats["whatif"] < 2 {
		t.Errorf("trace has %d what-if spans, expected several", cats["whatif"])
	}

	// The trace of an unknown session is a 404, not a panic.
	r404, err := http.Get(ts.URL + "/sessions/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unknown session: status %d, want 404", r404.StatusCode)
	}
}

// TestConcurrentSessionsObservability runs several sessions at once — at
// mixed per-session Parallelism levels (1..4), so intra-session worker-pool
// evaluation overlaps inter-session concurrency — each with a live NDJSON
// event-stream reader, then checks the shared registry's what-if histogram
// agrees with the sum of the sessions' exact call counts: the evaluator's
// atomic accounting, the per-session Recommendation.WhatIfCalls, and the obs
// histogram must all tell the same story however many workers raced. Run
// under -race this exercises the concurrency of the whole span/metrics path.
func TestConcurrentSessionsObservability(t *testing.T) {
	m := service.NewManager(3)
	if err := m.Register(&service.Backend{Name: "db", Tuner: smallServer(t)}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	const sessions = 4
	var wg sync.WaitGroup
	ids := make([]string, sessions)
	errs := make(chan error, sessions*2)
	for i := 0; i < sessions; i++ {
		w := quickWorkload(t, i)
		body, _ := json.Marshal(map[string]any{
			"database": "db",
			"statements": []workload.Statement{
				{SQL: w.Events[0].SQL, Weight: 1},
				{SQL: w.Events[1].SQL, Weight: 1},
			},
			"options": map[string]any{"parallelism": 1 + i},
		})
		resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		var snap service.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d (%s)", i, resp.StatusCode, snap.Error)
		}
		ids[i] = snap.ID

		// One NDJSON reader per session, concurrent with the tuning run.
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/sessions/" + id + "/events")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			lines, lastSeq := 0, 0
			for sc.Scan() {
				lines++
				var ev struct {
					Seq   int           `json:"seq"`
					State service.State `json:"state"`
				}
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					errs <- fmt.Errorf("session %s: bad NDJSON line %q: %w", id, sc.Text(), err)
					return
				}
				if ev.Seq != 0 && ev.Seq < lastSeq {
					errs <- fmt.Errorf("session %s: event seq went backwards (%d after %d)", id, ev.Seq, lastSeq)
					return
				}
				if ev.Seq != 0 {
					lastSeq = ev.Seq
				}
			}
			if lines < 2 {
				errs <- fmt.Errorf("session %s: event stream had %d lines, expected history + terminal snapshot", id, lines)
			}
		}(snap.ID)
	}

	var exact int64
	for _, id := range ids {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("session %s vanished", id)
		}
		<-s.Done()
		rec, err := s.Result()
		if err != nil || rec == nil {
			t.Fatalf("session %s: rec=%v err=%v", id, rec, err)
		}
		exact += rec.WhatIfCalls
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(strings.Builder)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw.WriteString(sc.Text())
		raw.WriteByte('\n')
	}
	resp.Body.Close()

	var histCount float64
	for _, v := range promValues(t, raw.String(), "dta_whatif_call_duration_seconds_count") {
		histCount += v
	}
	if int64(histCount) != exact {
		t.Fatalf("shared what-if histogram count = %v, want sum of session-exact counts = %d", histCount, exact)
	}
	if mx := m.Metrics(); mx.WhatIfCalls != exact {
		t.Fatalf("Metrics().WhatIfCalls = %d, want %d", mx.WhatIfCalls, exact)
	}
	if got := promValues(t, raw.String(), "dta_session_whatif_calls_total")[""]; int64(got) != exact {
		t.Fatalf("dta_session_whatif_calls_total = %v, want %d", got, exact)
	}
}
