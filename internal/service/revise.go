package service

import (
	"context"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
)

// ReviseRequest is the JSON body of PATCH /sessions/{id}: the constraint
// changes to replay against the completed session's retained costed pool.
// Absent (null) fields inherit the parent session's value; present fields
// replace it wholesale — an empty non-null pin or veto list clears the
// inherited one.
type ReviseRequest struct {
	// StorageMB replaces the recommendation's storage budget (0 = unbounded).
	StorageMB *int64 `json:"storageMB,omitempty"`
	// Aligned replaces the partition-alignment requirement.
	Aligned *bool `json:"aligned,omitempty"`
	// Pin replaces the pinned partial configuration with the structures
	// named by these keys, resolved against the pool's candidate set, its
	// base configuration, and the parent's own pinned structures. An
	// unresolvable key fails the request.
	Pin []string `json:"pin,omitempty"`
	// Veto replaces the vetoed structure keys: matching candidates are
	// excluded from merging and enumeration.
	Veto []string `json:"veto,omitempty"`
	// SliceWeights replaces the workload-slice weight multipliers
	// (statement template signature → multiplier).
	SliceWeights map[string]float64 `json:"sliceWeights,omitempty"`
}

// mergeConstraints applies a revision request on top of the parent
// session's constraints. Pin keys resolve against the pool's candidates,
// its base configuration, and the parent's pinned structures — the three
// places a structure a DBA saw in a report can have come from.
func mergeConstraints(cons core.Constraints, pool *core.CostedPool, req ReviseRequest) (core.Constraints, error) {
	if req.StorageMB != nil {
		cons.StorageBudget = *req.StorageMB << 20
	}
	if req.Aligned != nil {
		cons.Aligned = *req.Aligned
	}
	if req.Veto != nil {
		cons.Vetoed = req.Veto
	}
	if req.SliceWeights != nil {
		cons.SliceWeights = req.SliceWeights
	}
	if req.Pin != nil {
		if len(req.Pin) == 0 {
			cons.Pinned = nil
		} else {
			byKey := map[string]catalog.Structure{}
			for _, st := range pool.Candidates {
				byKey[st.Key()] = st
			}
			if pool.Base != nil {
				for _, st := range pool.Base.Structures() {
					byKey[st.Key()] = st
				}
			}
			if cons.Pinned != nil {
				for _, st := range cons.Pinned.Structures() {
					byKey[st.Key()] = st
				}
			}
			pin := catalog.NewConfiguration()
			for _, k := range req.Pin {
				st, ok := byKey[k]
				if !ok {
					return cons, fmt.Errorf("service: pin key %q matches no pool candidate or base structure", k)
				}
				st.ApplyTo(pin)
			}
			cons.Pinned = pin
		}
	}
	return cons, nil
}

// Revise creates a child session that replays the parent's retained costed
// pool under changed constraints, re-running only the search layer — no
// candidate regeneration, and no what-if call the pool can't answer or
// derive. The child runs asynchronously like any session, queued behind the
// worker limit; its snapshot carries the parent in RevisedFrom and the
// parent's snapshot lists it under Revisions. The parent must be a
// completed (done) session whose pool is still retained.
func (m *Manager) Revise(parentID string, req ReviseRequest) (*Session, error) {
	parent, ok := m.Get(parentID)
	if !ok {
		return nil, fmt.Errorf("service: no session %q", parentID)
	}
	parent.mu.Lock()
	state := parent.state
	pool := parent.pool
	cons := parent.cons
	parent.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("service: session %s is %s; revision requires a completed session", parentID, state)
	}
	if pool == nil {
		return nil, fmt.Errorf("service: session %s retains no costed pool (retention expired, or the session predates pool retention)", parentID)
	}
	cons, err := mergeConstraints(cons, pool, req)
	if err != nil {
		return nil, err
	}
	b, err := m.backend(parent.backend)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	s, err := m.addSession("", parent.backend, parent.id, cancel)
	if err != nil {
		cancel()
		return nil, err
	}
	s.cons = cons
	parent.mu.Lock()
	parent.revisions = append(parent.revisions, s.id)
	parent.mu.Unlock()
	m.revised.Add(1)
	m.cRevSessions.Inc()
	m.log.Info("revision created", "session", s.id, "parent", parent.id,
		"backend", parent.backend, "pool", pool.Fingerprint[:12])

	go m.runRevise(ctx, s, b, pool, cons)
	return s, nil
}

// runRevise executes one revision session: wait for a worker slot, replay
// the search layer against the pool, finish. It mirrors run with
// revision-specific accounting — the dta_revise_* series instead of the
// ingest series, and the pool fingerprint on the root span. The revised
// session retains its own pool, so revisions chain.
func (m *Manager) runRevise(ctx context.Context, s *Session, b *Backend, pool *core.CostedPool, cons core.Constraints) {
	ctx = obs.WithTrace(ctx, s.trace)
	ctx = journal.WithContext(ctx, s.journal)
	ctx, root := obs.StartSpan(ctx, "session", "session "+s.id)
	root.SetArg("backend", b.Name).SetArg("revisedFrom", s.revisedFrom).
		SetArg("pool", pool.Fingerprint)

	_, queued := obs.StartSpan(ctx, "session", "queued")
	select {
	case m.sem <- struct{}{}:
		queued.End()
		defer func() { <-m.sem }()
	case <-ctx.Done():
		queued.End()
		root.SetArg("state", string(StateCancelled)).End()
		m.cancelled.Add(1)
		m.cFinished[StateCancelled].Inc()
		m.log.Info("revision cancelled while queued", "session", s.id)
		s.finish(StateCancelled, nil, nil)
		return
	}
	s.setRunning()
	m.log.Info("revision started", "session", s.id, "parent", s.revisedFrom)

	opts := core.Options{
		Parallelism: m.clampParallelism(0),
		Metrics:     m.reg,
		Progress: func(p core.Progress) {
			if p.Degraded && s.degraded.CompareAndSwap(false, true) {
				m.gBreaker.Add(1)
				m.log.Warn("session degraded: circuit breaker open", "session", s.id)
			}
			s.onProgress(p)
		},
		PoolSink: func(p *core.CostedPool) { m.retainPool(s, p) },
	}
	start := time.Now()
	rec, err := core.Revise(ctx, b.Tuner, pool, cons, opts)
	elapsed := time.Since(start)

	st := StateDone
	switch {
	case err != nil && ctx.Err() != nil:
		st = StateCancelled
		m.cancelled.Add(1)
		s.finish(StateCancelled, nil, err)
	case err != nil:
		st = StateFailed
		m.failed.Add(1)
		s.finish(StateFailed, nil, err)
	case rec.StopReason == core.StopCancelled:
		st = StateCancelled
		m.cancelled.Add(1)
		m.whatIfCalls.Add(rec.WhatIfCalls)
		s.finish(StateCancelled, rec, nil)
	default:
		m.completed.Add(1)
		m.whatIfCalls.Add(rec.WhatIfCalls)
		s.finish(StateDone, rec, nil)
	}

	if s.degraded.Load() {
		m.gBreaker.Add(-1)
	}
	m.cFinished[st].Inc()
	m.hDuration.Observe(elapsed.Seconds())
	m.hRevDuration.Observe(elapsed.Seconds())
	root.SetArg("state", string(st))
	if rec != nil {
		m.cCalls.Add(float64(rec.WhatIfCalls))
		m.cRevCalls.Add(float64(rec.WhatIfCalls))
		m.hCalls.Observe(float64(rec.WhatIfCalls))
		m.hImprove.Observe(rec.Improvement)
		root.SetArg("whatIfCalls", rec.WhatIfCalls).SetArg("improvement", rec.Improvement)
		m.log.Info("revision finished", "session", s.id, "state", string(st),
			"duration", elapsed, "whatIfCalls", rec.WhatIfCalls,
			"improvement", rec.Improvement)
	} else {
		m.log.Info("revision finished", "session", s.id, "state", string(st),
			"duration", elapsed, "error", err)
	}
	root.End()
}
