package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

func patchJSON(t *testing.T, url string, body any) (int, service.Snapshot) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, snap
}

// TestHTTPRevise drives the interactive-tuning loop over the wire: a
// completed session retains its costed pool (in memory and as
// <id>.pool.json, which terminal-state cleanup must not delete), and
// PATCH /sessions/{id} spawns child sessions that re-run only the search
// layer — a same-constraints revision reproduces the parent's structures,
// a SELECT-only revision with derivation on issues zero what-if calls, and
// lineage flows through both snapshots.
func TestHTTPRevise(t *testing.T) {
	m, ts, _ := newTestAPI(t, 2)
	dir := t.TempDir()
	if err := m.SetStateDir(dir); err != nil {
		t.Fatal(err)
	}

	resp, parent := postJSON(t, ts.URL+"/sessions", service.CreateRequest{
		Database: "db",
		Statements: []workload.Statement{
			{SQL: "SELECT id FROM t WHERE x = 42", Weight: 1},
			{SQL: "SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a", Weight: 1},
			{SQL: "SELECT SUM(amt) FROM t WHERE a = 7", Weight: 1},
		},
		Options: service.CreateOptions{Features: "IDX", StorageMB: 64, Derive: "on"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /sessions = %d", resp.StatusCode)
	}
	snap := waitTerminal(t, ts.URL, parent.ID)
	if snap.State != service.StateDone {
		t.Fatalf("parent state = %s: %+v", snap.State, snap)
	}
	if snap.PoolFingerprint == "" {
		t.Fatal("completed session retains no costed pool")
	}
	if _, err := os.Stat(filepath.Join(dir, parent.ID+".pool.json")); err != nil {
		t.Fatalf("retained pool not persisted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, parent.ID+".json")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint state file survived terminal state: %v", err)
	}
	// The pool file must not be mistaken for resumable session state.
	if resumed, err := m.ResumeSessions(); err != nil || len(resumed) != 0 {
		t.Fatalf("ResumeSessions over a pool file: %v, resumed %d", err, len(resumed))
	}

	// Same-constraints revision: byte-identical search → same structures.
	code, same := patchJSON(t, ts.URL+"/sessions/"+parent.ID, map[string]any{"storageMB": 64})
	if code != http.StatusCreated {
		t.Fatalf("PATCH same-constraints = %d", code)
	}
	if same.RevisedFrom != parent.ID {
		t.Fatalf("child revisedFrom = %q, want %q", same.RevisedFrom, parent.ID)
	}
	sameSnap := waitTerminal(t, ts.URL, same.ID)
	if sameSnap.State != service.StateDone {
		t.Fatalf("revision state = %s: %+v", sameSnap.State, sameSnap)
	}
	if !sameSnap.Progress.Revised {
		t.Error("revision progress not flagged revised")
	}
	if sameSnap.Result == nil {
		t.Fatal("revision has no result")
	}
	if !reflect.DeepEqual(sameSnap.Result.Structures, snap.Result.Structures) {
		t.Errorf("same-constraints revision recommends %v, parent %v",
			sameSnap.Result.Structures, snap.Result.Structures)
	}
	// SELECT-only workload, derivation on: the search layer answers every
	// evaluation from the pool — zero new optimizer calls.
	if sameSnap.Result.WhatIfCalls != 0 {
		t.Errorf("revision issued %d what-if calls, want 0", sameSnap.Result.WhatIfCalls)
	}

	// Constraint change plus pin resolution against the pool's candidates.
	ps, _ := m.Get(parent.ID)
	pool := ps.Pool()
	if pool == nil || len(pool.Candidates) == 0 {
		t.Fatal("parent pool missing or empty")
	}
	pinKey := pool.Candidates[0].Key()
	code, pinned := patchJSON(t, ts.URL+"/sessions/"+parent.ID,
		map[string]any{"storageMB": 8, "pin": []string{pinKey}})
	if code != http.StatusCreated {
		t.Fatalf("PATCH pin = %d", code)
	}
	pinSnap := waitTerminal(t, ts.URL, pinned.ID)
	if pinSnap.State != service.StateDone {
		t.Fatalf("pinned revision state = %s: %+v", pinSnap.State, pinSnap)
	}

	// Lineage on the parent lists both children, in order.
	_, pSnap := getSnapshot(t, ts.URL+"/sessions/"+parent.ID)
	if want := []string{same.ID, pinned.ID}; !reflect.DeepEqual(pSnap.Revisions, want) {
		t.Errorf("parent revisions = %v, want %v", pSnap.Revisions, want)
	}

	// A revision of a revision works: children retain their own pools.
	code, chained := patchJSON(t, ts.URL+"/sessions/"+same.ID, map[string]any{"storageMB": 16})
	if code != http.StatusCreated {
		t.Fatalf("PATCH chained = %d", code)
	}
	if cs := waitTerminal(t, ts.URL, chained.ID); cs.State != service.StateDone {
		t.Fatalf("chained revision state = %s", cs.State)
	}

	// Error paths: unknown pin key, unknown session, unrevisable session.
	if code, _ := patchJSON(t, ts.URL+"/sessions/"+parent.ID, map[string]any{"pin": []string{"nope"}}); code != http.StatusBadRequest {
		t.Errorf("PATCH unknown pin key = %d, want 400", code)
	}
	if code, _ := patchJSON(t, ts.URL+"/sessions/zzz", map[string]any{}); code != http.StatusNotFound {
		t.Errorf("PATCH unknown session = %d, want 404", code)
	}

	mm := m.Metrics()
	if mm.SessionsRevised != 3 {
		t.Errorf("SessionsRevised = %d, want 3", mm.SessionsRevised)
	}
	if mm.PoolsRetained != 4 { // parent + three completed revisions
		t.Errorf("PoolsRetained = %d, want 4", mm.PoolsRetained)
	}
}

// TestHTTPReviseConflict checks that a session that did not complete —
// here, one cancelled mid-run — rejects revision with 409.
func TestHTTPReviseConflict(t *testing.T) {
	_, ts, gate := newTestAPI(t, 2)
	// Enough statements that the session is still searching at the gated
	// call (the gate parks the tuning goroutine mid-run).
	var stmts []workload.Statement
	for _, e := range slowWorkload(t).Events {
		stmts = append(stmts, workload.Statement{SQL: e.SQL, Weight: e.Weight})
	}
	resp, victim := postJSON(t, ts.URL+"/sessions", service.CreateRequest{
		Database:   "db-gated",
		Statements: stmts,
		Options:    service.CreateOptions{Features: "IDX", NoCompression: true, SkipReports: true},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	select {
	case <-gate.reached:
	case <-time.After(time.Minute):
		t.Fatal("victim never reached its gated call")
	}
	// Mid-run: not terminal, not revisable.
	if code, _ := patchJSON(t, ts.URL+"/sessions/"+victim.ID, map[string]any{"storageMB": 1}); code != http.StatusConflict {
		t.Errorf("PATCH running session = %d, want 409", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+victim.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	close(gate.release)
	if snap := waitTerminal(t, ts.URL, victim.ID); snap.State != service.StateCancelled {
		t.Fatalf("victim state = %s, want cancelled", snap.State)
	}
	// Terminal but not done: still 409.
	if code, _ := patchJSON(t, ts.URL+"/sessions/"+victim.ID, map[string]any{"storageMB": 1}); code != http.StatusConflict {
		t.Errorf("PATCH cancelled session = %d, want 409", code)
	}
}

// TestPoolRetentionTTL checks dtaserver -pool-retention semantics: after
// the TTL a completed session's pool is released (gauge back down, file
// gone) and revision is refused.
func TestPoolRetentionTTL(t *testing.T) {
	m, ts, _ := newTestAPI(t, 2)
	dir := t.TempDir()
	if err := m.SetStateDir(dir); err != nil {
		t.Fatal(err)
	}
	m.SetPoolRetention(80 * time.Millisecond)

	resp, snap := postJSON(t, ts.URL+"/sessions", service.CreateRequest{
		Database: "db",
		Statements: []workload.Statement{
			{SQL: "SELECT id FROM t WHERE x = 3", Weight: 1},
		},
		Options: service.CreateOptions{Features: "IDX"},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	if s := waitTerminal(t, ts.URL, snap.ID); s.State != service.StateDone {
		t.Fatalf("state = %s", s.State)
	}
	s, _ := m.Get(snap.ID)
	deadline := time.Now().Add(30 * time.Second)
	for s.Pool() != nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if s.Pool() != nil {
		t.Fatal("pool survived its retention TTL")
	}
	if got := m.Metrics().PoolsRetained; got != 0 {
		t.Errorf("PoolsRetained after expiry = %d, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(dir, snap.ID+".pool.json")); !os.IsNotExist(err) {
		t.Errorf("pool file survived retention expiry: %v", err)
	}
	if code, _ := patchJSON(t, ts.URL+"/sessions/"+snap.ID, map[string]any{"storageMB": 1}); code != http.StatusConflict {
		t.Errorf("PATCH expired pool = %d, want 409", code)
	}
}
