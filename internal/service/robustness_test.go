package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/service"
	"repro/internal/workload"
)

// faultSpec returns the fault-matrix spec: CI's fault-matrix job pins it via
// DTA_FAULT_SPEC; locally the default injects a 10% what-if error rate.
func faultSpec() string {
	if s := os.Getenv("DTA_FAULT_SPEC"); s != "" {
		return s
	}
	return "seed=7;whatif:error:0.10"
}

// deriveOpt returns the options.derive value robustness sessions request:
// CI's fault-matrix job pins "verify" in one leg via DTA_DERIVE so every
// derived cost is cross-checked while faults fire; unset defers to the
// server default.
func deriveOpt() string { return os.Getenv("DTA_DERIVE") }

// TestFaultMatrixDegradedSession drives a session through the HTTP API
// against a backend with the fault-matrix injection rate and asserts the
// robustness contract end to end: the session never crashes and never
// returns empty-handed — it finishes as done with StopReason "degraded", a
// real baseline cost, a degraded progress stream, and the retry/fault/
// breaker metric series present in a scrape.
func TestFaultMatrixDegradedSession(t *testing.T) {
	m := service.NewManager(2)
	if err := m.Register(&service.Backend{Name: "db", Tuner: smallServer(t), DefaultWorkload: slowWorkload(t)}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"options":{"faultSpec":%q,"derive":%q}}`, faultSpec(), deriveOpt())
	resp, err := srv.Client().Post(srv.URL+"/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}

	s, ok := m.Get(snap.ID)
	if !ok {
		t.Fatalf("no session %q", snap.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatalf("session did not finish: %v", err)
	}

	final := s.Snapshot()
	if final.State != service.StateDone {
		t.Fatalf("state %q (error %q), want done", final.State, final.Error)
	}
	if final.Result == nil {
		t.Fatal("degraded session returned no recommendation")
	}
	if final.Result.StopReason != core.StopDegraded {
		t.Fatalf("StopReason %q, want %q", final.Result.StopReason, core.StopDegraded)
	}
	if final.Result.BaseCost <= 0 {
		t.Fatalf("no baseline cost: %+v", final.Result)
	}
	if !final.Progress.Degraded {
		t.Fatal("final progress snapshot not marked degraded")
	}

	// The robustness series must land in the shared registry scrape.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{
		"dta_retries_total", "dta_faults_injected_total",
		"dta_sessions_degraded_total", "dta_breaker_state",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("scrape is missing %s", series)
		}
	}
	// The session is terminal, so no breaker is open any more.
	if !strings.Contains(text, "dta_breaker_state 0") {
		t.Error("dta_breaker_state should read 0 after the session finished")
	}
}

// resumeStatements is the fixed workload of the resume test, varied enough
// that a checkpoint lands mid-run.
func resumeStatements() []workload.Statement {
	var stmts []workload.Statement
	for i := 0; i < 6; i++ {
		stmts = append(stmts,
			workload.Statement{SQL: fmt.Sprintf("SELECT id FROM t WHERE x = %d", 50+i*31)},
			workload.Statement{SQL: fmt.Sprintf("SELECT a, COUNT(*) FROM t WHERE x < %d GROUP BY a", 8+i)},
		)
	}
	return stmts
}

// TestStateDirResume simulates the kill + restart sequence: a state file
// with a mid-run checkpoint (what a crashed dtaserver leaves behind) is
// placed in a fresh manager's state directory; ResumeSessions must restart
// the session under its original ID, converge on the identical
// recommendation an uninterrupted run produces, spend fewer optimizer
// calls doing it, and clean up the state file once terminal.
func TestStateDirResume(t *testing.T) {
	stmts := resumeStatements()
	wl, err := workload.FromStatements(stmts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the uninterrupted run, through the service like any other.
	ref := service.NewManager(2)
	if err := ref.Register(&service.Backend{Name: "db", Tuner: smallServer(t)}); err != nil {
		t.Fatal(err)
	}
	refSess, err := ref.Create(service.Request{Workload: wl, Options: core.Options{Derive: derive.Mode(deriveOpt())}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := refSess.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	refRec, refErr := refSess.Result()
	if refErr != nil || refRec == nil {
		t.Fatalf("reference run: rec=%v err=%v", refRec, refErr)
	}

	// Capture the checkpoint a crashed run would have persisted: same
	// workload, same (default) options, fresh identical server.
	var first *core.Checkpoint
	if _, err := core.Tune(smallServer(t), wl, core.Options{
		Derive:          derive.Mode(deriveOpt()),
		CheckpointEvery: 50,
		CheckpointSink: func(ck *core.Checkpoint) {
			if first == nil {
				first = ck
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("no checkpoint emitted; grow the workload")
	}

	// Hand-craft the crashed session's state file, matching the on-disk
	// schema (id + statements + wire options + checkpoint).
	dir := t.TempDir()
	state := struct {
		ID         string                `json:"id"`
		Created    time.Time             `json:"created"`
		Statements []workload.Statement  `json:"statements"`
		Options    service.CreateOptions `json:"options"`
		Checkpoint *core.Checkpoint      `json:"checkpoint"`
	}{ID: "s-0042", Created: time.Now(), Statements: stmts,
		Options: service.CreateOptions{Derive: deriveOpt()}, Checkpoint: first}
	data, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "s-0042.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh manager, fresh backend, same state dir.
	m := service.NewManager(2)
	if err := m.Register(&service.Backend{Name: "db", Tuner: smallServer(t)}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStateDir(dir); err != nil {
		t.Fatal(err)
	}
	resumed, err := m.ResumeSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0].ID() != "s-0042" {
		t.Fatalf("resumed %v, want [s-0042]", resumed)
	}
	if err := resumed[0].Wait(ctx); err != nil {
		t.Fatal(err)
	}
	rec, err := resumed[0].Result()
	if err != nil || rec == nil {
		t.Fatalf("resumed run: rec=%v err=%v", rec, err)
	}

	if got, want := renderStructures(rec), renderStructures(refRec); got != want {
		t.Fatalf("resumed recommendation differs:\n%s\nvs\n%s", got, want)
	}
	if rec.Cost != refRec.Cost || rec.BaseCost != refRec.BaseCost {
		t.Fatalf("resumed costs differ: %.9f/%.9f vs %.9f/%.9f",
			rec.BaseCost, rec.Cost, refRec.BaseCost, refRec.Cost)
	}
	if rec.WhatIfCalls >= refRec.WhatIfCalls {
		t.Fatalf("resume saved no optimizer calls: %d vs %d", rec.WhatIfCalls, refRec.WhatIfCalls)
	}

	// The state file is deleted once the session is terminal (it may lag
	// Wait by an instant — run() removes it right after finish).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "s-0042.json")); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("state file survived the session")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The ID sequence advanced past the resumed session.
	next, err := m.Create(service.Request{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	defer next.Cancel()
	if next.ID() != "s-0043" {
		t.Fatalf("next session %q, want s-0043", next.ID())
	}
}

func renderStructures(rec *core.Recommendation) string {
	var out []string
	for _, st := range rec.NewStructures {
		out = append(out, st.String())
	}
	return strings.Join(out, "\n")
}
