// Package service implements the long-lived tuning service the paper's §2.1
// frames DTA as: a server-side advisor DBAs invoke against named databases
// under explicit time budgets. A Manager runs many tuning sessions
// concurrently — one goroutine each, bounded by a worker limit — with
// per-session lifecycle state, live progress snapshots streamed from
// core.TuneContext's Progress callback, context-based cancellation that
// yields the best-so-far recommendation (anytime behaviour), and cumulative
// service metrics. The HTTP front end lives in http.go; cmd/dtaserver binds
// it to a listener.
package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/derive"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/workload"
)

// State is a session's lifecycle state.
type State string

// Session lifecycle: pending (queued for a worker slot) → running →
// done | cancelled | failed. A cancelled session that got past baseline
// costing still carries a partial recommendation.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// Backend is one tunable database server registered with the manager. The
// Tuner is shared by every session on the backend, which is why the what-if
// layer's accounting and statistics store are concurrency-safe.
type Backend struct {
	Name  string
	Tuner core.Tuner
	// DefaultWorkload serves sessions that do not supply statements.
	DefaultWorkload *workload.Workload
	// BaseConfig is the backend's existing physical design (constraint
	// indexes etc.); sessions inherit it unless they specify their own.
	BaseConfig *catalog.Configuration
}

// Request describes one tuning session.
type Request struct {
	// Backend names the registered backend; may be empty when exactly one
	// backend is registered.
	Backend  string
	Workload *workload.Workload // nil = backend's default workload
	Options  core.Options
}

// Event is one progress notification of a session: the state and progress
// snapshot at one moment, sequence-numbered per session.
type Event struct {
	Seq      int           `json:"seq"`
	State    State         `json:"state"`
	Progress core.Progress `json:"progress"`
}

// maxEventHistory bounds the per-session event log replayed to late
// subscribers; beyond it the oldest snapshots are dropped (Seq gaps tell).
const maxEventHistory = 1024

// Session is one tuning run managed by the service.
type Session struct {
	id      string
	backend string
	created time.Time
	// revisedFrom is the parent session ID for sessions created by
	// PATCH /sessions/{id} (""= fresh session). Set before the session is
	// published and immutable afterwards.
	revisedFrom string
	// trace collects the session's span timeline (session → phase → query →
	// greedy step → what-if call); exported as Chrome trace-event JSON at
	// GET /sessions/{id}/trace.
	trace *obs.Trace
	// journal collects the session's decision events (candidate accept/
	// reject, greedy seed/steps, merges, drops, derive fallbacks, retry/
	// breaker transitions); streamed at GET /sessions/{id}/journal and
	// reconstructed into provenance at GET /sessions/{id}/explain.
	journal *journal.Journal

	cancel context.CancelFunc
	done   chan struct{}
	// degraded flips once the session's circuit breaker opens; the manager
	// uses the transition for its dta_breaker_state gauge bookkeeping.
	degraded atomic.Bool

	mu       sync.Mutex
	state    State
	seq      int
	progress core.Progress
	events   []Event
	subs     map[int]chan Event
	nextSub  int
	started  time.Time
	finished time.Time
	rec      *core.Recommendation
	err      error
	// cons is the search-layer constraint set the session ran under; a
	// revision inherits it field-by-field unless the PATCH body overrides.
	cons core.Constraints
	// pool is the costed pool retained after a successful completion, the
	// input of session revision; nil until then and again after the
	// retention TTL expires. poolGen guards the expiry timer against
	// clearing a pool retained later.
	pool    *core.CostedPool
	poolGen int
	// revisions lists child sessions created by revising this one.
	revisions []string
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Backend returns the backend the session tunes.
func (s *Session) Backend() string { return s.backend }

// RevisedFrom returns the parent session ID for sessions created by
// PATCH /sessions/{id} revision; "" for fresh sessions.
func (s *Session) RevisedFrom() string { return s.revisedFrom }

// Pool returns the session's retained costed pool: nil while the session
// runs, set after a successful completion, nil again once the pool
// retention TTL expires.
func (s *Session) Pool() *core.CostedPool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool
}

// Trace returns the session's span timeline. It is live: a running session's
// trace grows as spans complete, and exporting it at any time is safe.
func (s *Session) Trace() *obs.Trace { return s.trace }

// Journal returns the session's decision journal. Like the trace it is
// live and bounded; exporting it at any time is safe. It is derived
// state: a resumed session deterministically regenerates its decision
// events rather than restoring them from the checkpoint.
func (s *Session) Journal() *journal.Journal { return s.journal }

// State returns the current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Progress returns the latest progress snapshot.
func (s *Session) Progress() core.Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.progress
}

// Result returns the recommendation and error once the session is terminal.
// A cancelled session may carry both a partial recommendation and no error.
func (s *Session) Result() (*core.Recommendation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec, s.err
}

// Done is closed when the session reaches a terminal state.
func (s *Session) Done() <-chan struct{} { return s.done }

// Wait blocks until the session is terminal or ctx expires.
func (s *Session) Wait(ctx context.Context) error {
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cancellation: a pending session terminates immediately, a
// running one stops within one what-if optimizer call and keeps its
// best-so-far recommendation.
func (s *Session) Cancel() { s.cancel() }

// Subscribe registers a live event subscriber. It returns the event history
// so far (for replay), a channel of subsequent events that is closed when
// the session terminates, and an unsubscribe function. Slow subscribers
// lose intermediate snapshots rather than stalling the tuning goroutine.
func (s *Session) Subscribe() ([]Event, <-chan Event, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hist := append([]Event(nil), s.events...)
	if s.state.Terminal() {
		ch := make(chan Event)
		close(ch)
		return hist, ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	ch := make(chan Event, 64)
	s.subs[id] = ch
	return hist, ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
	}
}

// publish appends an event and fans it out; the caller holds s.mu.
func (s *Session) publishLocked() {
	s.seq++
	e := Event{Seq: s.seq, State: s.state, Progress: s.progress}
	s.events = append(s.events, e)
	if len(s.events) > maxEventHistory {
		s.events = append(s.events[:1:1], s.events[len(s.events)-maxEventHistory+1:]...)
	}
	for _, ch := range s.subs {
		select {
		case ch <- e:
		default: // drop for slow subscribers; snapshots are self-contained
		}
	}
}

// onProgress is the core Progress callback: it runs on the tuning goroutine
// and snapshots progress under the session lock.
func (s *Session) onProgress(p core.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.progress = p
	s.publishLocked()
}

func (s *Session) setRunning() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = StateRunning
	s.started = time.Now()
	s.publishLocked()
}

// finish transitions to a terminal state, publishes the final event, and
// closes every subscriber channel.
func (s *Session) finish(st State, rec *core.Recommendation, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = st
	s.rec = rec
	s.err = err
	s.finished = time.Now()
	if rec != nil {
		s.progress.BestImprovement = rec.Improvement
		s.progress.WhatIfCalls = rec.WhatIfCalls
	}
	s.progress.Phase = core.PhaseDone
	s.publishLocked()
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	close(s.done)
}

// Snapshot is the JSON-friendly view of a session.
type Snapshot struct {
	ID       string        `json:"id"`
	Backend  string        `json:"backend"`
	State    State         `json:"state"`
	Created  time.Time     `json:"created"`
	Started  *time.Time    `json:"started,omitempty"`
	Finished *time.Time    `json:"finished,omitempty"`
	Progress core.Progress `json:"progress"`
	Error    string        `json:"error,omitempty"`
	Result   *Result       `json:"result,omitempty"`
	// RevisedFrom is the parent session for revision sessions.
	RevisedFrom string `json:"revisedFrom,omitempty"`
	// Revisions lists child sessions created by revising this one.
	Revisions []string `json:"revisions,omitempty"`
	// PoolFingerprint is the content address of the session's retained
	// costed pool; present exactly while the session is revisable.
	PoolFingerprint string `json:"poolFingerprint,omitempty"`
}

// Result summarizes a terminal session's recommendation.
type Result struct {
	Improvement  float64 `json:"improvement"`
	BaseCost     float64 `json:"baseCost"`
	Cost         float64 `json:"cost"`
	StorageMB    float64 `json:"storageMB"`
	EventsTuned  int     `json:"eventsTuned"`
	WhatIfCalls  int64   `json:"whatIfCalls"`
	DerivedEvals int64   `json:"derivedEvals,omitempty"`
	// DeriveFallbacks breaks down, by reason, the evaluations the
	// derivation layer answered with a real optimizer call instead.
	DeriveFallbacks map[string]int64 `json:"deriveFallbacks,omitempty"`
	StatsCreated    int              `json:"statsCreated"`
	DurationMS      int64            `json:"durationMS"`
	StopReason      string           `json:"stopReason,omitempty"`
	Structures      []string         `json:"structures,omitempty"`
	Dropped         []string         `json:"dropped,omitempty"`
	// IngestedEvents is the raw-trace event count absorbed by streaming
	// ingestion (zero for sessions not created from a streamed trace).
	IngestedEvents int64 `json:"ingestedEvents,omitempty"`
}

// Snapshot captures the session's current state for reporting.
func (s *Session) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{
		ID:          s.id,
		Backend:     s.backend,
		State:       s.state,
		Created:     s.created,
		Progress:    s.progress,
		RevisedFrom: s.revisedFrom,
		Revisions:   append([]string(nil), s.revisions...),
	}
	if s.pool != nil {
		out.PoolFingerprint = s.pool.Fingerprint
	}
	if !s.started.IsZero() {
		t := s.started
		out.Started = &t
	}
	if !s.finished.IsZero() {
		t := s.finished
		out.Finished = &t
	}
	if s.err != nil {
		out.Error = s.err.Error()
	}
	if s.rec != nil {
		r := &Result{
			Improvement:     s.rec.Improvement,
			BaseCost:        s.rec.BaseCost,
			Cost:            s.rec.Cost,
			StorageMB:       float64(s.rec.StorageBytes) / (1 << 20),
			EventsTuned:     s.rec.EventsTuned,
			WhatIfCalls:     s.rec.WhatIfCalls,
			DerivedEvals:    s.rec.DerivedEvals,
			DeriveFallbacks: s.rec.DeriveFallbacks,
			StatsCreated:    s.rec.StatsCreated,
			DurationMS:      s.rec.Duration.Milliseconds(),
			StopReason:      s.rec.StopReason,
			IngestedEvents:  s.rec.IngestedEvents,
		}
		for _, st := range s.rec.NewStructures {
			r.Structures = append(r.Structures, "CREATE "+st.String())
		}
		for _, st := range s.rec.DroppedStructures {
			r.Dropped = append(r.Dropped, "DROP "+st.String())
		}
		out.Result = r
	}
	return out
}

// MetricsSetter is implemented by tuners that can observe into a shared
// metrics registry (whatif.Server, testsrv.Session). Register attaches the
// manager's registry to every backend whose tuner implements it.
type MetricsSetter interface {
	SetMetrics(*obs.Registry)
}

// Manager runs tuning sessions over registered backends.
type Manager struct {
	sem chan struct{}

	// parCap, when positive, is the server-wide per-session parallelism
	// budget: sessions asking for more (or for the default) are clamped to
	// it, so one greedy client cannot monopolize the box's cores.
	parCap int

	// deriveDefault is the cost-derivation mode applied to sessions whose
	// request leaves options.derive empty (dtaserver -derive).
	deriveDefault derive.Mode

	// driftDefault is the drift threshold applied to daemons whose request
	// leaves drift.threshold zero (dtaserver -drift-threshold; zero here
	// falls back to DefaultDriftThreshold).
	driftDefault float64

	// poolTTL bounds how long a completed session's costed pool is retained
	// for revision (dtaserver -pool-retention; 0 = the life of the process).
	poolTTL time.Duration

	// reg is the observability registry shared by the service, every
	// backend's what-if server, and every session's tuning pipeline; exposed
	// as Prometheus text at GET /metrics.
	reg *obs.Registry
	log *slog.Logger

	mu       sync.Mutex
	backends map[string]*Backend
	sessions map[string]*Session
	order    []string
	seq      int
	// daemons holds continuous tuning daemons (daemon.go) in creation
	// order; dseq allocates their d-NNNN IDs.
	daemons map[string]*Daemon
	dorder  []string
	dseq    int
	// stateDir, when set via SetStateDir, holds one JSON state file per
	// in-flight wire-representable session (manifest + last checkpoint);
	// see state.go.
	stateDir string

	created   atomic.Int64
	completed atomic.Int64
	cancelled atomic.Int64
	failed    atomic.Int64
	// whatIfCalls sums the session-exact call counts of finished sessions.
	whatIfCalls atomic.Int64
	// revised counts revision sessions created; poolsRetained tracks pools
	// currently held for revision (mirrors the dta_pools_retained gauge).
	revised       atomic.Int64
	poolsRetained atomic.Int64
	// Daemon lifecycle counters (daemon.go): daemons created, re-tunes run
	// across all triggers, and recommendation deltas emitted.
	daemonsCreated atomic.Int64
	daemonRetunes  atomic.Int64
	deltasEmitted  atomic.Int64

	// Registry series mirroring the lifecycle counters above, cached at
	// construction so the run loop never takes registry locks.
	cCreated  *obs.Counter
	cFinished map[State]*obs.Counter
	cCalls    *obs.Counter
	hDuration *obs.Histogram
	hCalls    *obs.Histogram
	hImprove  *obs.Histogram
	gPending  *obs.Gauge
	gRunning  *obs.Gauge
	// gBreaker counts sessions whose circuit breaker is currently open
	// (running in — or finished after — degraded mode, not yet terminal).
	gBreaker *obs.Gauge
	// Streaming-ingest series (see CreateStreaming): cumulative raw events
	// and bytes through the online compressors, plus per-trace template
	// counts and compression ratios.
	cIngestEvents *obs.Counter
	cIngestBytes  *obs.Counter
	hTemplates    *obs.Histogram
	hRatio        *obs.Histogram
	// Revision series (see Revise): sessions created through
	// PATCH /sessions/{id}, the search-only what-if calls they issued, their
	// wall time, and the pools currently retained to serve them.
	cRevSessions *obs.Counter
	cRevCalls    *obs.Counter
	hRevDuration *obs.Histogram
	gPools       *obs.Gauge
	// Daemon series (daemon.go): daemons created, re-tunes by trigger, and
	// the per-delta churn distribution. The per-daemon dta_drift_score
	// gauge is registered when each daemon is created.
	cDaemons *obs.Counter
	cRetunes map[string]*obs.Counter
	hChurn   *obs.Histogram
}

// NewManager creates a manager running at most workers sessions at once
// (workers ≤ 0 means 4, the shipped DTA's default degree of parallelism for
// its own server work).
func NewManager(workers int) *Manager {
	if workers <= 0 {
		workers = 4
	}
	reg := obs.NewRegistry()
	m := &Manager{
		sem:      make(chan struct{}, workers),
		reg:      reg,
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		backends: map[string]*Backend{},
		sessions: map[string]*Session{},
		cCreated: reg.Counter("dta_sessions_created_total", "Tuning sessions created."),
		cFinished: map[State]*obs.Counter{
			StateDone:      reg.Counter("dta_sessions_finished_total", "Tuning sessions finished, by terminal state.", "state", string(StateDone)),
			StateCancelled: reg.Counter("dta_sessions_finished_total", "Tuning sessions finished, by terminal state.", "state", string(StateCancelled)),
			StateFailed:    reg.Counter("dta_sessions_finished_total", "Tuning sessions finished, by terminal state.", "state", string(StateFailed)),
		},
		cCalls: reg.Counter("dta_session_whatif_calls_total",
			"Session-exact what-if calls of finished sessions (matches the JSON metrics' whatIfCalls)."),
		hDuration: reg.Histogram("dta_session_duration_seconds",
			"Wall time of finished tuning sessions.", obs.LatencyBuckets),
		hCalls: reg.Histogram("dta_session_whatif_calls",
			"What-if calls per finished session.", obs.ExpBuckets(8, 2, 16)),
		hImprove: reg.Histogram("dta_session_improvement",
			"Workload cost improvement per finished session (0..1).", obs.LinearBuckets(0.1, 0.1, 10)),
		gPending: reg.Gauge("dta_sessions", "Live sessions by state.", "state", string(StatePending)),
		gRunning: reg.Gauge("dta_sessions", "Live sessions by state.", "state", string(StateRunning)),
		gBreaker: reg.Gauge("dta_breaker_state",
			"Live sessions whose circuit breaker is open (degraded mode); 0 = every live session healthy."),
		cIngestEvents: reg.Counter("dta_ingest_events_total",
			"Raw trace events folded into streaming-ingest session compressors."),
		cIngestBytes: reg.Counter("dta_ingest_bytes_total",
			"Trace bytes consumed by streaming session ingestion."),
		hTemplates: reg.Histogram("dta_compress_templates",
			"Distinct statement templates observed per streamed trace.", obs.CountBuckets),
		hRatio: reg.Histogram("dta_compress_ratio",
			"Workload compression ratio (raw events per kept representative) per streamed trace.", obs.RatioBuckets),
		cRevSessions: reg.Counter("dta_revise_sessions_total",
			"Revision sessions created via PATCH /sessions/{id}."),
		cRevCalls: reg.Counter("dta_revise_whatif_calls_total",
			"What-if calls issued by finished revision sessions (search-layer pool misses only)."),
		hRevDuration: reg.Histogram("dta_revise_duration_seconds",
			"Wall time of finished revision sessions.", obs.LatencyBuckets),
		gPools: reg.Gauge("dta_pools_retained",
			"Costed pools currently retained in memory for session revision."),
		cDaemons: reg.Counter("dta_daemons_created_total",
			"Continuous tuning daemons created."),
		cRetunes: map[string]*obs.Counter{
			TriggerInitial: reg.Counter("dta_daemon_retunes_total",
				"Daemon re-tunes, by trigger (initial, drift, feedback).", "trigger", TriggerInitial),
			TriggerDrift: reg.Counter("dta_daemon_retunes_total",
				"Daemon re-tunes, by trigger (initial, drift, feedback).", "trigger", TriggerDrift),
			TriggerFeedback: reg.Counter("dta_daemon_retunes_total",
				"Daemon re-tunes, by trigger (initial, drift, feedback).", "trigger", TriggerFeedback),
		},
		hChurn: reg.Histogram("dta_delta_churn",
			"Structures created plus dropped per daemon recommendation delta.", obs.CountBuckets),
		daemons: map[string]*Daemon{},
	}
	return m
}

// Registry returns the manager's shared metrics registry, for callers that
// want to add their own series or scrape it outside HTTP.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// SetParallelismCap bounds every session's core.Options.Parallelism at n
// (≤ 0 removes the cap). A session requesting the default (0, meaning
// GOMAXPROCS) is also clamped: with a cap set, no session exceeds it.
// Call before serving; the cap applies to sessions created afterwards.
func (m *Manager) SetParallelismCap(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		n = 0
	}
	m.parCap = n
}

// SetDeriveDefault sets the cost-derivation mode for sessions whose request
// does not choose one (options.derive empty). An explicit per-session
// "off"/"on"/"verify" always wins. Call before serving; the default applies
// to sessions created afterwards.
func (m *Manager) SetDeriveDefault(mode derive.Mode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deriveDefault = mode
}

// SetPoolRetention bounds how long a completed session keeps its costed
// pool available for revision (dtaserver -pool-retention). Zero — the
// default — retains pools for the life of the process. Call before
// serving; the TTL applies to pools retained afterwards.
func (m *Manager) SetPoolRetention(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 {
		d = 0
	}
	m.poolTTL = d
}

// retainPool keeps a completed session's costed pool for revision: in
// memory on the session (bounded by the retention TTL) and, with a state
// directory attached, as <id>.pool.json on disk — a file removeState never
// touches, so pools survive session completion and server restarts.
func (m *Manager) retainPool(s *Session, p *core.CostedPool) {
	m.mu.Lock()
	ttl := m.poolTTL
	m.mu.Unlock()
	s.mu.Lock()
	had := s.pool != nil
	s.pool = p
	s.poolGen++
	gen := s.poolGen
	s.mu.Unlock()
	if !had {
		m.poolsRetained.Add(1)
		m.gPools.Add(1)
	}
	m.writePool(s.id, p)
	if ttl > 0 {
		time.AfterFunc(ttl, func() { m.expirePool(s, gen) })
	}
}

// expirePool drops a session's retained pool once its retention TTL runs
// out; the generation check keeps a stale timer from clearing a pool
// retained after it was armed.
func (m *Manager) expirePool(s *Session, gen int) {
	s.mu.Lock()
	expired := s.pool != nil && s.poolGen == gen
	if expired {
		s.pool = nil
	}
	s.mu.Unlock()
	if expired {
		m.poolsRetained.Add(-1)
		m.gPools.Add(-1)
		m.removePool(s.id)
		m.log.Info("pool retention expired", "session", s.id)
	}
}

// SetLogger replaces the manager's logger (default: discard). Session
// lifecycle events are logged with the session ID as a structured attribute.
func (m *Manager) SetLogger(l *slog.Logger) {
	if l != nil {
		m.log = l
	}
}

// Register adds a tunable backend. A tuner that implements MetricsSetter is
// attached to the manager's shared registry, so the what-if load of every
// backend lands in one scrape.
func (m *Manager) Register(b *Backend) error {
	if b == nil || b.Name == "" || b.Tuner == nil {
		return fmt.Errorf("service: backend needs a name and a tuner")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.backends[b.Name]; dup {
		return fmt.Errorf("service: backend %q already registered", b.Name)
	}
	if ms, ok := b.Tuner.(MetricsSetter); ok {
		ms.SetMetrics(m.reg)
	}
	m.backends[b.Name] = b
	m.log.Info("backend registered", "backend", b.Name)
	return nil
}

// Backends lists registered backend names, sorted.
func (m *Manager) Backends() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.backends))
	for n := range m.backends {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// backend resolves a request's backend name.
func (m *Manager) backend(name string) (*Backend, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if name == "" {
		if len(m.backends) == 1 {
			for _, b := range m.backends {
				return b, nil
			}
		}
		return nil, fmt.Errorf("service: request names no backend and %d are registered", len(m.backends))
	}
	b, ok := m.backends[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown backend %q", name)
	}
	return b, nil
}

// Create starts a tuning session for the request and returns it
// immediately; the session runs asynchronously, queued behind the worker
// limit.
func (m *Manager) Create(req Request) (*Session, error) {
	return m.create(req, "", nil)
}

// create is Create plus the resume path's extra inputs: a fixed session ID
// (empty = allocate the next sequence number) and a checkpoint to
// warm-start from (nil = fresh session).
func (m *Manager) create(req Request, id string, resume *core.Checkpoint) (*Session, error) {
	b, err := m.backend(req.Backend)
	if err != nil {
		return nil, err
	}
	w := req.Workload
	if w == nil {
		w = b.DefaultWorkload
	}
	if w == nil || w.Len() == 0 {
		return nil, fmt.Errorf("service: backend %q has no default workload and the request supplied none", b.Name)
	}
	opts := req.Options
	if opts.BaseConfig == nil {
		opts.BaseConfig = b.BaseConfig
	}
	opts.Parallelism = m.clampParallelism(opts.Parallelism)
	if opts.Derive == "" {
		// The wire form persisted below keeps the request's empty value, so
		// a resumed session follows the server default at resume time, the
		// same way parallelism is re-clamped.
		m.mu.Lock()
		opts.Derive = m.deriveDefault
		m.mu.Unlock()
	}

	opts.Resume = resume
	if opts.Faults != nil {
		// Session-scoped injectors report into the shared registry so
		// injected faults are visible next to the retries they cause.
		opts.Faults.SetMetrics(m.reg)
	}

	ctx, cancel := context.WithCancel(context.Background())
	s, err := m.addSession(id, b.Name, "", cancel)
	if err != nil {
		cancel()
		return nil, err
	}
	s.cons = opts.SearchConstraints()
	m.log.Info("session created", "session", s.id, "backend", b.Name, "events", w.Len())

	// Persist the manifest and hook up checkpointing when a state directory
	// is attached and the request survives the wire round trip. The wire
	// form is captured from the request's own options — before the
	// service-side defaults (base config, progress wrapper, metrics) are
	// grafted on — so resume rebuilds the session through the same path a
	// fresh create takes.
	if wire, ok := wireOptions(req.Options); ok && m.statePath(s.id) != "" {
		st := &sessionState{
			ID:         s.id,
			Backend:    req.Backend,
			Created:    s.created,
			Statements: wireStatements(req.Workload),
			Options:    wire,
		}
		m.writeState(st)
		opts.CheckpointSink = func(ck *core.Checkpoint) {
			snap := *st
			snap.Checkpoint = ck
			m.writeState(&snap)
		}
	}

	go m.run(ctx, s, b, w, opts)
	return s, nil
}

// clampParallelism applies the server-wide per-session parallelism budget: a
// request for more than the cap (or for the default, 0 = GOMAXPROCS) is
// shrunk to it. Without a cap the request passes through untouched.
func (m *Manager) clampParallelism(p int) int {
	m.mu.Lock()
	parCap := m.parCap
	m.mu.Unlock()
	if parCap <= 0 {
		return p
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > parCap {
		p = parCap
	}
	return p
}

// addSession allocates, registers, and counts a new pending session. An empty
// id takes the next sequence number; a caller-supplied id (the resume path)
// must not collide with a live session, and the sequence is kept ahead of it
// so fresh sessions never collide either. revisedFrom records revision
// lineage ("" for fresh sessions).
func (m *Manager) addSession(id, backend, revisedFrom string, cancel context.CancelFunc) (*Session, error) {
	m.mu.Lock()
	if id == "" {
		m.seq++
		id = fmt.Sprintf("s-%04d", m.seq)
	} else {
		if _, dup := m.sessions[id]; dup {
			m.mu.Unlock()
			return nil, fmt.Errorf("service: session %q already exists", id)
		}
		var n int
		if _, err := fmt.Sscanf(id, "s-%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
	s := &Session{
		id:          id,
		backend:     backend,
		created:     time.Now(),
		revisedFrom: revisedFrom,
		cancel:      cancel,
		done:        make(chan struct{}),
		state:       StatePending,
		subs:        map[int]chan Event{},
	}
	s.trace = obs.NewTrace(s.id)
	s.journal = journal.New(s.id)
	s.journal.AttachMetrics(m.reg)
	m.sessions[s.id] = s
	m.order = append(m.order, s.id)
	m.mu.Unlock()
	m.created.Add(1)
	m.cCreated.Inc()
	return s, nil
}

// run executes one session: wait for a worker slot, tune, finish. The whole
// run happens under the session's trace — a root "session" span with a
// "queued" child covering the wait for a worker slot, and below it the spans
// core.TuneContext opens (phase → query → greedy step → what-if call).
func (m *Manager) run(ctx context.Context, s *Session, b *Backend, w *workload.Workload, opts core.Options) {
	ctx = obs.WithTrace(ctx, s.trace)
	ctx = journal.WithContext(ctx, s.journal)
	ctx, root := obs.StartSpan(ctx, "session", "session "+s.id)
	root.SetArg("backend", b.Name).SetArg("events", w.Len())

	_, queued := obs.StartSpan(ctx, "session", "queued")
	select {
	case m.sem <- struct{}{}:
		queued.End()
		defer func() { <-m.sem }()
	case <-ctx.Done():
		queued.End()
		root.SetArg("state", string(StateCancelled)).End()
		m.cancelled.Add(1)
		m.cFinished[StateCancelled].Inc()
		m.log.Info("session cancelled while queued", "session", s.id)
		m.removeState(s.id)
		s.finish(StateCancelled, nil, nil)
		return
	}
	s.setRunning()
	m.log.Info("session started", "session", s.id, "backend", b.Name)

	user := opts.Progress
	opts.Progress = func(p core.Progress) {
		if p.Degraded && s.degraded.CompareAndSwap(false, true) {
			m.gBreaker.Add(1)
			m.log.Warn("session degraded: circuit breaker open", "session", s.id)
		}
		s.onProgress(p)
		if user != nil {
			user(p)
		}
	}
	if opts.Metrics == nil {
		opts.Metrics = m.reg
	}
	userSink := opts.PoolSink
	opts.PoolSink = func(p *core.CostedPool) {
		m.retainPool(s, p)
		if userSink != nil {
			userSink(p)
		}
	}
	start := time.Now()
	rec, err := core.TuneContext(ctx, b.Tuner, w, opts)
	elapsed := time.Since(start)

	st := StateDone
	switch {
	case err != nil && ctx.Err() != nil:
		// Cancelled before any partial result existed.
		st = StateCancelled
		m.cancelled.Add(1)
		s.finish(StateCancelled, nil, err)
	case err != nil:
		st = StateFailed
		m.failed.Add(1)
		s.finish(StateFailed, nil, err)
	case rec.StopReason == core.StopCancelled:
		st = StateCancelled
		m.cancelled.Add(1)
		m.whatIfCalls.Add(rec.WhatIfCalls)
		s.finish(StateCancelled, rec, nil)
	default:
		m.completed.Add(1)
		m.whatIfCalls.Add(rec.WhatIfCalls)
		s.finish(StateDone, rec, nil)
	}

	m.removeState(s.id)
	if s.degraded.Load() {
		m.gBreaker.Add(-1)
	}
	m.cFinished[st].Inc()
	m.hDuration.Observe(elapsed.Seconds())
	root.SetArg("state", string(st))
	if rec != nil {
		m.cCalls.Add(float64(rec.WhatIfCalls))
		m.hCalls.Observe(float64(rec.WhatIfCalls))
		m.hImprove.Observe(rec.Improvement)
		root.SetArg("whatIfCalls", rec.WhatIfCalls).SetArg("improvement", rec.Improvement)
		m.log.Info("session finished", "session", s.id, "state", string(st),
			"duration", elapsed, "whatIfCalls", rec.WhatIfCalls,
			"improvement", rec.Improvement)
	} else {
		m.log.Info("session finished", "session", s.id, "state", string(st),
			"duration", elapsed, "error", err)
	}
	root.End()
}

// Get returns the session by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Sessions returns every session in creation order.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.sessions[id])
	}
	return out
}

// Cancel cancels the session by ID.
func (m *Manager) Cancel(id string) (*Session, error) {
	s, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("service: no session %q", id)
	}
	s.Cancel()
	return s, nil
}

// BackendMetrics is the cumulative what-if load one backend has absorbed.
type BackendMetrics struct {
	Name        string `json:"name"`
	WhatIfCalls int64  `json:"whatIfCalls"`
}

// Metrics is the service-wide counter snapshot.
type Metrics struct {
	SessionsCreated   int64            `json:"sessionsCreated"`
	SessionsPending   int64            `json:"sessionsPending"`
	SessionsRunning   int64            `json:"sessionsRunning"`
	SessionsDone      int64            `json:"sessionsDone"`
	SessionsCancelled int64            `json:"sessionsCancelled"`
	SessionsFailed    int64            `json:"sessionsFailed"`
	SessionsRevised   int64            `json:"sessionsRevised"`
	PoolsRetained     int64            `json:"poolsRetained"`
	WhatIfCalls       int64            `json:"whatIfCalls"`
	DaemonsCreated    int64            `json:"daemonsCreated"`
	DaemonRetunes     int64            `json:"daemonRetunes"`
	DeltasEmitted     int64            `json:"deltasEmitted"`
	Backends          []BackendMetrics `json:"backends"`
}

// Metrics returns the cumulative service metrics. WhatIfCalls sums the
// session-exact counts of finished sessions; the per-backend counters are
// the shared servers' own cumulative totals (they also include calls of
// still-running sessions).
func (m *Manager) Metrics() Metrics {
	out := Metrics{
		SessionsCreated:   m.created.Load(),
		SessionsDone:      m.completed.Load(),
		SessionsCancelled: m.cancelled.Load(),
		SessionsFailed:    m.failed.Load(),
		SessionsRevised:   m.revised.Load(),
		PoolsRetained:     m.poolsRetained.Load(),
		WhatIfCalls:       m.whatIfCalls.Load(),
		DaemonsCreated:    m.daemonsCreated.Load(),
		DaemonRetunes:     m.daemonRetunes.Load(),
		DeltasEmitted:     m.deltasEmitted.Load(),
	}
	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	backends := make([]*Backend, 0, len(m.backends))
	for _, b := range m.backends {
		backends = append(backends, b)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		switch s.State() {
		case StatePending:
			out.SessionsPending++
		case StateRunning:
			out.SessionsRunning++
		}
	}
	for _, b := range backends {
		out.Backends = append(out.Backends, BackendMetrics{Name: b.Name, WhatIfCalls: b.Tuner.WhatIfCallCount()})
	}
	sort.Slice(out.Backends, func(i, j int) bool { return out.Backends[i].Name < out.Backends[j].Name })
	return out
}

// Shutdown cancels every live session and waits (bounded by ctx) for all of
// them to reach a terminal state.
func (m *Manager) Shutdown(ctx context.Context) error {
	for _, s := range m.Sessions() {
		if !s.State().Terminal() {
			s.Cancel()
		}
	}
	for _, s := range m.Sessions() {
		if err := s.Wait(ctx); err != nil {
			return err
		}
	}
	return nil
}
