package service_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/service"
	"repro/internal/sqlparser"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// smallServer builds a production server sized for race-enabled tests: a
// 20k-row fact table t and a 2k-row dimension d, data attached so
// statistics can be created.
func smallServer(tb testing.TB) *whatif.Server {
	tb.Helper()
	cat := catalog.New()
	db := catalog.NewDatabase("db")
	db.AddTable(catalog.NewTable("db", "t", 0,
		&catalog.Column{Name: "id", Type: catalog.TypeInt, Width: 8, Distinct: 20000, Min: 0, Max: 19999},
		&catalog.Column{Name: "x", Type: catalog.TypeInt, Width: 8, Distinct: 2000, Min: 0, Max: 1999},
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 100, Min: 0, Max: 99},
		&catalog.Column{Name: "amt", Type: catalog.TypeFloat, Width: 8, Distinct: 1000, Min: 0, Max: 999},
		&catalog.Column{Name: "pad", Type: catalog.TypeString, Width: 60, Distinct: 20000, Min: 0, Max: 19999},
	))
	db.AddTable(catalog.NewTable("db", "d", 0,
		&catalog.Column{Name: "d_id", Type: catalog.TypeInt, Width: 8, Distinct: 2000, Min: 0, Max: 1999},
		&catalog.Column{Name: "grp", Type: catalog.TypeInt, Width: 8, Distinct: 20, Min: 0, Max: 19},
	))
	cat.AddDatabase(db)

	data := engine.NewDatabase(cat)
	const rows = 20000
	trows := make([][]engine.Value, 0, rows)
	for i := 0; i < rows; i++ {
		trows = append(trows, []engine.Value{
			engine.Num(float64(i)),
			engine.Num(float64((i * 37) % 2000)),
			engine.Num(float64(i % 100)),
			engine.Num(float64((i * 13) % 1000)),
			engine.Str(fmt.Sprintf("pad%05d", i)),
		})
	}
	if err := data.Load("t", trows); err != nil {
		tb.Fatal(err)
	}
	drows := make([][]engine.Value, 0, 2000)
	for i := 0; i < 2000; i++ {
		drows = append(drows, []engine.Value{engine.Num(float64(i)), engine.Num(float64(i % 20))})
	}
	if err := data.Load("d", drows); err != nil {
		tb.Fatal(err)
	}

	s := whatif.NewServer("prod", cat, optimizer.DefaultHardware())
	s.AttachData(data)
	return s
}

// slowWorkload is a workload with enough distinct events that a session
// tuning it cannot finish before the test cancels it.
func slowWorkload(tb testing.TB) *workload.Workload {
	tb.Helper()
	w := &workload.Workload{}
	for i := 0; i < 14; i++ {
		for _, q := range []string{
			fmt.Sprintf("SELECT id FROM t WHERE x = %d", i*31%2000),
			fmt.Sprintf("SELECT a, COUNT(*) FROM t WHERE x < %d GROUP BY a", 10+i),
			fmt.Sprintf("SELECT SUM(amt) FROM t WHERE a = %d", i%100),
		} {
			if err := w.Add(q, 1); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return w
}

func quickWorkload(tb testing.TB, seed int) *workload.Workload {
	tb.Helper()
	w, err := workload.New(
		fmt.Sprintf("SELECT id FROM t WHERE x = %d", 100+seed),
		fmt.Sprintf("SELECT a, COUNT(*) FROM t WHERE x < %d GROUP BY a", 5+seed),
	)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// gatedTuner wraps a shared server and parks the tuning goroutine at its
// gate-th what-if call: the call signals reached and blocks until release.
// Tests use it to cancel a session that is deterministically mid-search.
type gatedTuner struct {
	core.Tuner
	n       atomic.Int64
	gate    int64
	reached chan struct{}
	release chan struct{}
}

func newGatedTuner(t core.Tuner, gate int64) *gatedTuner {
	return &gatedTuner{Tuner: t, gate: gate, reached: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedTuner) WhatIfCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, error) {
	if g.n.Add(1) == g.gate {
		close(g.reached)
	}
	if g.n.Load() >= g.gate {
		<-g.release
	}
	return g.Tuner.WhatIfCost(stmt, cfg)
}

// TestConcurrentSessionsSharedServer runs five sessions (four workers) on
// one shared what-if server, cancels one mid-candidate-selection, and
// checks the anytime result plus exact call accounting across sessions.
func TestConcurrentSessionsSharedServer(t *testing.T) {
	srv := smallServer(t)
	m := service.NewManager(4)
	if err := m.Register(&service.Backend{Name: "db", Tuner: srv}); err != nil {
		t.Fatal(err)
	}
	// The to-be-cancelled session runs on a gated view of the same server:
	// its 120th what-if call — past the 42-call baseline costing, inside
	// candidate selection's greedy searches — parks until the test releases
	// it, so the cancellation deterministically lands mid-run.
	gate := newGatedTuner(srv, 120)
	if err := m.Register(&service.Backend{Name: "db-gated", Tuner: gate}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(service.Request{Backend: "nope"}); err == nil {
		t.Fatal("expected unknown-backend error")
	}
	if _, err := m.Create(service.Request{Backend: "db"}); err == nil {
		t.Fatal("expected missing-workload error")
	}

	victim, err := m.Create(service.Request{
		Backend:  "db-gated",
		Workload: slowWorkload(t),
		Options:  core.Options{Features: core.FeatureIndexes, NoCompression: true, SkipReports: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var others []*service.Session
	for i := 0; i < 4; i++ {
		s, err := m.Create(service.Request{
			Backend:  "db",
			Workload: quickWorkload(t, i),
			Options:  core.Options{Features: core.FeatureIndexes},
		})
		if err != nil {
			t.Fatal(err)
		}
		others = append(others, s)
	}

	hist, live, unsub := victim.Subscribe()
	defer unsub()

	select {
	case <-gate.reached:
	case <-time.After(time.Minute):
		t.Fatalf("victim never reached its gated call: %+v", victim.Snapshot())
	}
	// Cancel while the victim is parked inside a what-if call, then let the
	// call finish: the search must stop before issuing another one.
	victim.Cancel()
	close(gate.release)

	all := append([]*service.Session{victim}, others...)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, s := range all {
		if err := s.Wait(ctx); err != nil {
			t.Fatalf("session %s did not terminate: %v", s.ID(), err)
		}
		if !s.State().Terminal() {
			t.Fatalf("session %s state %s not terminal", s.ID(), s.State())
		}
	}

	// The cancelled session carries a partial, valid, anytime result.
	if victim.State() != service.StateCancelled {
		t.Fatalf("victim state = %s, want cancelled", victim.State())
	}
	rec, err := victim.Result()
	if err != nil {
		t.Fatalf("victim error: %v", err)
	}
	if rec == nil {
		t.Fatal("cancelled mid-run session should keep its best-so-far recommendation")
	}
	if rec.StopReason != core.StopCancelled {
		t.Fatalf("victim StopReason = %q, want %q", rec.StopReason, core.StopCancelled)
	}
	if rec.Improvement < 0 {
		t.Fatalf("partial recommendation worse than base: %+v", rec)
	}
	if err := rec.Config.Validate(srv.Cat); err != nil {
		t.Fatalf("partial recommendation invalid: %v", err)
	}
	// The search stopped within one call of the cancellation; sealing the
	// final configuration may add the odd cache-miss call.
	if calls := gate.n.Load(); calls < gate.gate || calls > gate.gate+2 {
		t.Fatalf("victim issued %d what-if calls after cancelling at %d", calls, gate.gate)
	} else if rec.WhatIfCalls != calls {
		t.Fatalf("victim accounts %d calls, its server saw %d", rec.WhatIfCalls, calls)
	}

	// The subscription saw the victim progress through the pipeline and
	// terminate: phases advance, and the final event is terminal.
	for e := range live {
		hist = append(hist, e)
	}
	sawCandidates := false
	for _, e := range hist {
		if e.Progress.Phase == core.PhaseCandidates {
			sawCandidates = true
		}
	}
	if !sawCandidates {
		t.Fatalf("victim events never showed candidate selection: %+v", hist)
	}
	if last := hist[len(hist)-1]; !last.State.Terminal() || last.Progress.Phase != core.PhaseDone {
		t.Fatalf("last victim event not terminal: %+v", last)
	}

	// The other sessions completed normally and improved their workloads.
	var total int64
	for _, s := range all {
		r, err := s.Result()
		if err != nil {
			t.Fatalf("session %s: %v", s.ID(), err)
		}
		if s != victim {
			if s.State() != service.StateDone {
				t.Fatalf("session %s state = %s", s.ID(), s.State())
			}
			if r.Improvement <= 0 {
				t.Fatalf("session %s found no improvement: %+v", s.ID(), r)
			}
		}
		if r.WhatIfCalls <= 0 {
			t.Fatalf("session %s reports %d what-if calls", s.ID(), r.WhatIfCalls)
		}
		total += r.WhatIfCalls
	}

	// Per-session accounting is exact: the sessions' counts sum to the
	// shared server's cumulative counter.
	if got := srv.WhatIfCallCount(); got != total {
		t.Fatalf("shared server counted %d what-if calls, sessions sum to %d", got, total)
	}

	mx := m.Metrics()
	if mx.SessionsCreated != 5 || mx.SessionsDone != 4 || mx.SessionsCancelled != 1 || mx.SessionsFailed != 0 {
		t.Fatalf("metrics off: %+v", mx)
	}
	if mx.WhatIfCalls != total {
		t.Fatalf("metrics WhatIfCalls = %d, want %d", mx.WhatIfCalls, total)
	}
	// Both backends front the same shared server, so each reports the full
	// cumulative counter.
	if len(mx.Backends) != 2 || mx.Backends[0].WhatIfCalls != total || mx.Backends[1].WhatIfCalls != total {
		t.Fatalf("backend metrics off (want %d calls): %+v", total, mx.Backends)
	}
}

// TestPendingSessionCancelled checks that a session cancelled while queued
// behind the worker limit terminates without running.
func TestPendingSessionCancelled(t *testing.T) {
	srv := smallServer(t)
	m := service.NewManager(1)
	if err := m.Register(&service.Backend{Name: "db", Tuner: srv, DefaultWorkload: slowWorkload(t)}); err != nil {
		t.Fatal(err)
	}
	running, err := m.Create(service.Request{Options: core.Options{SkipReports: true}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Create(service.Request{})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := queued.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if queued.State() != service.StateCancelled {
		t.Fatalf("queued state = %s", queued.State())
	}
	if rec, _ := queued.Result(); rec != nil {
		t.Fatalf("queued session should have no result, got %+v", rec)
	}
	running.Cancel()
	if err := running.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
