package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xmlio"
)

// sessionState is the on-disk form of one resumable session: the manifest
// (everything needed to recreate the Request) plus the last checkpoint the
// tuning pipeline emitted. One file per session lives under the manager's
// state directory as <id>.json; the file is written when the session is
// created, rewritten at every checkpoint, and deleted when the session
// reaches a terminal state — so after a crash, exactly the in-flight
// sessions remain on disk for ResumeSessions to pick up.
type sessionState struct {
	ID         string               `json:"id"`
	Backend    string               `json:"backend,omitempty"`
	Created    time.Time            `json:"created"`
	Statements []workload.Statement `json:"statements,omitempty"`
	Options    CreateOptions        `json:"options"`
	Checkpoint *core.Checkpoint     `json:"checkpoint,omitempty"`
}

// SetStateDir enables session persistence: every wire-representable session
// writes its manifest and periodic checkpoints under dir, and
// ResumeSessions restarts whatever is found there. The directory is created
// if missing. Call before serving; an empty dir disables persistence.
func (m *Manager) SetStateDir(dir string) error {
	if dir == "" {
		m.mu.Lock()
		m.stateDir = ""
		m.mu.Unlock()
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: state dir: %w", err)
	}
	m.mu.Lock()
	m.stateDir = dir
	m.mu.Unlock()
	return nil
}

// statePath returns the session's state file path ("" with persistence off).
func (m *Manager) statePath(id string) string {
	m.mu.Lock()
	dir := m.stateDir
	m.mu.Unlock()
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, id+".json")
}

// writeState persists one session state atomically (temp file + rename), so
// a crash mid-write leaves the previous checkpoint intact rather than a
// truncated file.
func (m *Manager) writeState(st *sessionState) {
	path := m.statePath(st.ID)
	if path == "" {
		return
	}
	data, err := json.Marshal(st)
	if err != nil {
		m.log.Warn("session state marshal", "session", st.ID, "err", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		m.log.Warn("session state write", "session", st.ID, "err", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		m.log.Warn("session state rename", "session", st.ID, "err", err)
	}
}

// removeState deletes a terminal session's state file: only sessions that
// were still in flight when the process died remain on disk. A retained
// pool's <id>.pool.json is deliberately NOT removed here — pools outlive
// their session's terminal state so revisions (and dta -revise against the
// file) keep working; only retention expiry deletes them.
func (m *Manager) removeState(id string) {
	if path := m.statePath(id); path != "" {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			m.log.Warn("session state remove", "session", id, "err", err)
		}
	}
}

// poolPath returns the session's retained-pool file path ("" with
// persistence off). Pool files live beside the checkpoint state as
// <id>.pool.json.
func (m *Manager) poolPath(id string) string {
	m.mu.Lock()
	dir := m.stateDir
	m.mu.Unlock()
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, id+".pool.json")
}

// writePool persists a completed session's costed pool atomically, in the
// same JSON form cmd/dta -pool writes and -revise reads.
func (m *Manager) writePool(id string, p *core.CostedPool) {
	path := m.poolPath(id)
	if path == "" {
		return
	}
	data, err := json.Marshal(p)
	if err != nil {
		m.log.Warn("pool marshal", "session", id, "err", err)
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		m.log.Warn("pool write", "session", id, "err", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		m.log.Warn("pool rename", "session", id, "err", err)
	}
}

// removePool deletes a session's retained-pool file (retention expiry).
func (m *Manager) removePool(id string) {
	if path := m.poolPath(id); path != "" {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			m.log.Warn("pool remove", "session", id, "err", err)
		}
	}
}

// ResumeSessions scans the state directory and restarts every persisted
// session that is not already live, warm-started from its last checkpoint.
// A resumed session keeps its original ID; because the pipeline is
// deterministic given its cached optimizer costs, it converges on the same
// recommendation the uninterrupted run would have produced. Corrupt or
// stale state files are logged and skipped, never fatal — a crashed server
// must come back up even if one session's state did not survive.
func (m *Manager) ResumeSessions() ([]*Session, error) {
	m.mu.Lock()
	dir := m.stateDir
	m.mu.Unlock()
	if dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		// <id>.pool.json files are retained pools and <id>.daemon.json files
		// are continuous tuning daemons (ResumeDaemons), not resumable
		// sessions.
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") &&
			!strings.HasSuffix(e.Name(), ".pool.json") && !strings.HasSuffix(e.Name(), daemonSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // creation order: IDs are zero-padded sequence numbers

	var resumed []*Session
	for _, name := range names {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			m.log.Warn("session state read", "file", name, "err", err)
			continue
		}
		var st sessionState
		if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
			m.log.Warn("session state corrupt", "file", name, "err", err)
			continue
		}
		if _, live := m.Get(st.ID); live {
			continue
		}
		req, err := st.toRequest()
		if err != nil {
			m.log.Warn("session state unusable", "session", st.ID, "err", err)
			continue
		}
		s, err := m.create(req, st.ID, st.Checkpoint)
		if err != nil {
			m.log.Warn("session resume failed", "session", st.ID, "err", err)
			continue
		}
		calls := int64(0)
		if st.Checkpoint != nil {
			calls = st.Checkpoint.WhatIfCalls
		}
		m.log.Info("session resumed", "session", s.ID(), "backend", s.Backend(),
			"checkpointCalls", calls)
		resumed = append(resumed, s)
	}
	return resumed, nil
}

// toRequest rebuilds the service request a persisted session was created
// from, through the same wire mapping the HTTP create path uses.
func (st *sessionState) toRequest() (Request, error) {
	cr := CreateRequest{Database: st.Backend, Statements: st.Statements, Options: st.Options}
	return cr.toRequest()
}

// wireOptions maps core.Options back onto the wire form, the inverse of
// CreateOptions.toCore. The bool reports whether the mapping is faithful:
// options carrying programmatic-only state (a user-specified configuration,
// callbacks, ablation knobs the wire form does not expose) cannot round-trip
// through JSON, and sessions created with them are simply not persisted.
func wireOptions(o core.Options) (CreateOptions, bool) {
	representable := o.UserConfig == nil && o.BaseConfig == nil &&
		o.Progress == nil && o.Metrics == nil &&
		o.CheckpointSink == nil && o.Resume == nil && o.PoolSink == nil &&
		len(o.Vetoed) == 0 && len(o.SliceWeights) == 0 &&
		!o.CompressWorkload && o.CompressThreshold == 0 && o.MaxPerTemplate == 0 &&
		o.ColGroupFrac == 0 && !o.NoColGroupRestriction && o.MaxKeyColumns == 0 &&
		o.PerQueryK == 0 && o.CandidatePoolCap == 0 &&
		!o.NoMerging && !o.EagerAlignment && !o.DisableStatReduction &&
		o.PartitionCount == 0 && o.CheckpointEvery == 0 &&
		o.StorageBudget%(1<<20) == 0 &&
		o.Retry.BaseDelay == 0 && o.Retry.MaxDelay == 0 && o.Retry.Timeout == 0 &&
		o.Breaker.FailureRate == 0 && o.Breaker.MinSamples == 0
	if !representable {
		return CreateOptions{}, false
	}
	c := CreateOptions{
		StorageMB:     o.StorageBudget >> 20,
		Aligned:       o.Aligned,
		NoCompression: o.NoCompression,
		AllowDrops:    o.AllowDrops,
		EvaluateOnly:  o.EvaluateOnly,
		GreedyM:       o.GreedyM,
		GreedyK:       o.GreedyK,
		SkipReports:   o.SkipReports,
		Parallelism:   o.Parallelism,
		Derive:        string(o.Derive),
		RetryAttempts: o.Retry.MaxAttempts,
	}
	if o.Features != 0 {
		c.Features = xmlio.FeatureMaskToString(o.Features)
	}
	if o.TimeLimit != 0 {
		c.TimeLimit = o.TimeLimit.String()
	}
	if spec := o.Faults.Spec(); spec != nil {
		c.FaultSpec = spec.String()
	}
	return c, true
}

// wireStatements renders a workload back to its wire statements so a
// persisted session carries its exact workload (nil workload = the
// backend's default, which re-resolves at resume).
func wireStatements(w *workload.Workload) []workload.Statement {
	if w == nil {
		return nil
	}
	out := make([]workload.Statement, 0, len(w.Events))
	for _, e := range w.Events {
		out = append(out, workload.Statement{SQL: e.SQL, Weight: e.Weight})
	}
	return out
}
