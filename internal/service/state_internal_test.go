package service

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

// TestWireOptionsRoundTrip verifies the persistence invariant behind
// checkpoint/resume: a session created from wire options must map back to
// the identical wire form, so the resumed session is configured exactly as
// the original. Options carrying programmatic-only state must be rejected
// (ok=false) rather than silently persisted lossily.
func TestWireOptionsRoundTrip(t *testing.T) {
	in := CreateOptions{
		Features:      "IDX",
		StorageMB:     64,
		TimeLimit:     "2s",
		GreedyM:       2,
		GreedyK:       6,
		Parallelism:   3,
		Derive:        "verify",
		SkipReports:   true,
		NoCompression: true,
		FaultSpec:     "seed=5;whatif:error:0.1", // canonical rendering of Spec.String

		RetryAttempts: 6,
	}
	opts, err := in.toCore()
	if err != nil {
		t.Fatal(err)
	}
	out, ok := wireOptions(opts)
	if !ok {
		t.Fatal("wire-created options reported as not representable")
	}
	if out != in {
		t.Fatalf("round trip changed the options:\n got %+v\nwant %+v", out, in)
	}

	// Defaults round-trip to defaults, with the empty feature string
	// normalized to its explicit spelling "ALL".
	var zero CreateOptions
	opts, err = zero.toCore()
	if err != nil {
		t.Fatal(err)
	}
	out, ok = wireOptions(opts)
	if !ok || out != (CreateOptions{Features: "ALL"}) {
		t.Fatalf("zero options: ok=%v out=%+v", ok, out)
	}

	// Programmatic-only state cannot be represented on the wire.
	opts.UserConfig = &catalog.Configuration{}
	if _, ok := wireOptions(opts); ok {
		t.Fatal("options with a UserConfig must not be persisted")
	}
	opts.UserConfig = nil
	opts.CheckpointSink = func(*core.Checkpoint) {}
	if _, ok := wireOptions(opts); ok {
		t.Fatal("options with a CheckpointSink must not be persisted")
	}
}
