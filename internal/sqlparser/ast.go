package sqlparser

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmtNode()
	// String deparses the statement back to SQL text.
	String() string
}

// Expr is any scalar or boolean expression.
type Expr interface {
	exprNode()
	String() string
}

// ColName references a column, optionally qualified by a table name or
// alias. Both parts are stored lower-cased.
type ColName struct {
	Qualifier string
	Name      string
}

func (*ColName) exprNode() {}

// String renders "qualifier.name" or "name".
func (c *ColName) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// LitKind distinguishes literal value kinds.
type LitKind int

// Literal kinds.
const (
	LitNumber LitKind = iota
	LitString
	LitParam // a '?' placeholder from a templatized workload
)

// Literal is a constant in the query text.
type Literal struct {
	Kind LitKind
	F    float64
	S    string
}

func (*Literal) exprNode() {}

// String renders the literal as SQL.
func (l *Literal) String() string {
	switch l.Kind {
	case LitNumber:
		return trimNum(l.F)
	case LitString:
		return "'" + strings.ReplaceAll(l.S, "'", "''") + "'"
	default:
		return "?"
	}
}

func trimNum(f float64) string { return fmt.Sprintf("%g", f) }

// Value returns the literal's numeric interpretation: the number itself, or
// a stable fold of a string used for dictionary ordering.
func (l *Literal) Value() float64 { return l.F }

// BinaryExpr is a scalar arithmetic expression.
type BinaryExpr struct {
	Op          string // + - * /
	Left, Right Expr
}

func (*BinaryExpr) exprNode() {}

// String renders "(l op r)".
func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// FuncExpr is a function call; in this subset, always an aggregate.
type FuncExpr struct {
	Name string // lower-case: count, sum, avg, min, max
	Star bool   // COUNT(*)
	Arg  Expr   // nil when Star
}

func (*FuncExpr) exprNode() {}

// String renders "NAME(arg)".
func (f *FuncExpr) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	return strings.ToUpper(f.Name) + "(" + f.Arg.String() + ")"
}

// ComparisonExpr is a boolean comparison: col op expr, expr op expr.
// Ops: = < > <= >= <> LIKE.
type ComparisonExpr struct {
	Op          string
	Left, Right Expr
}

func (*ComparisonExpr) exprNode() {}

// String renders "l op r".
func (c *ComparisonExpr) String() string {
	return c.Left.String() + " " + c.Op + " " + c.Right.String()
}

// BetweenExpr is "expr BETWEEN lo AND hi".
type BetweenExpr struct {
	Expr   Expr
	Lo, Hi Expr
}

func (*BetweenExpr) exprNode() {}

// String renders the BETWEEN form.
func (b *BetweenExpr) String() string {
	return b.Expr.String() + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String()
}

// InExpr is "expr IN (v1, v2, ...)".
type InExpr struct {
	Expr Expr
	List []Expr
}

func (*InExpr) exprNode() {}

// String renders the IN form.
func (i *InExpr) String() string {
	items := make([]string, len(i.List))
	for k, e := range i.List {
		items[k] = e.String()
	}
	return i.Expr.String() + " IN (" + strings.Join(items, ", ") + ")"
}

// AndExpr is a boolean conjunction.
type AndExpr struct{ Left, Right Expr }

func (*AndExpr) exprNode() {}

// String renders "l AND r".
func (a *AndExpr) String() string { return a.Left.String() + " AND " + a.Right.String() }

// OrExpr is a boolean disjunction.
type OrExpr struct{ Left, Right Expr }

func (*OrExpr) exprNode() {}

// String renders "(l OR r)".
func (o *OrExpr) String() string { return "(" + o.Left.String() + " OR " + o.Right.String() + ")" }

// NotExpr is boolean negation.
type NotExpr struct{ Inner Expr }

func (*NotExpr) exprNode() {}

// String renders "NOT (inner)".
func (n *NotExpr) String() string { return "NOT (" + n.Inner.String() + ")" }

// SelectItem is one projection of a SELECT list.
type SelectItem struct {
	Expr  Expr // nil means '*'
	Alias string
}

// String renders "expr AS alias".
func (s SelectItem) String() string {
	if s.Expr == nil {
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// TableRef is a FROM-list table with an optional alias (lower-cased).
type TableRef struct {
	Name  string
	Alias string
}

// String renders "name alias".
func (t TableRef) String() string {
	if t.Alias != "" && t.Alias != t.Name {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// Binding returns the name the query text uses to qualify columns of this
// table: the alias if present, else the table name.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// String renders "expr [DESC]".
func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// Select is a parsed SELECT statement. JOIN ... ON syntax is normalized at
// parse time into the flat From list with the ON condition folded into Where,
// which is the shape the optimizer's join enumeration consumes.
type Select struct {
	Top      int // 0 = no TOP clause
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil = no predicate
	GroupBy  []*ColName
	Having   Expr
	OrderBy  []OrderItem
}

func (*Select) stmtNode() {}

// String deparses the SELECT.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Top > 0 {
		fmt.Fprintf(&b, "TOP %d ", s.Top)
	}
	if len(s.Items) == 0 {
		b.WriteString("*")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	return b.String()
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Insert is a parsed INSERT statement.
type Insert struct {
	Table   string
	Columns []string // may be empty (positional)
	Rows    [][]Expr
}

func (*Insert) stmtNode() {}

// String deparses the INSERT.
func (ins *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(ins.Table)
	if len(ins.Columns) > 0 {
		b.WriteString(" (" + strings.Join(ins.Columns, ", ") + ")")
	}
	b.WriteString(" VALUES ")
	for i, row := range ins.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Update is a parsed UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*Update) stmtNode() {}

// String deparses the UPDATE.
func (u *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(u.Table)
	b.WriteString(" SET ")
	for i, a := range u.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column + " = " + a.Value.String())
	}
	if u.Where != nil {
		b.WriteString(" WHERE " + u.Where.String())
	}
	return b.String()
}

// Delete is a parsed DELETE statement.
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmtNode() {}

// String deparses the DELETE.
func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// WalkExprs calls fn for every expression node reachable from e, pre-order.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *BinaryExpr:
		WalkExprs(v.Left, fn)
		WalkExprs(v.Right, fn)
	case *FuncExpr:
		WalkExprs(v.Arg, fn)
	case *ComparisonExpr:
		WalkExprs(v.Left, fn)
		WalkExprs(v.Right, fn)
	case *BetweenExpr:
		WalkExprs(v.Expr, fn)
		WalkExprs(v.Lo, fn)
		WalkExprs(v.Hi, fn)
	case *InExpr:
		WalkExprs(v.Expr, fn)
		for _, x := range v.List {
			WalkExprs(x, fn)
		}
	case *AndExpr:
		WalkExprs(v.Left, fn)
		WalkExprs(v.Right, fn)
	case *OrExpr:
		WalkExprs(v.Left, fn)
		WalkExprs(v.Right, fn)
	case *NotExpr:
		WalkExprs(v.Inner, fn)
	}
}

// WalkStatement calls fn for every expression in the statement.
func WalkStatement(s Statement, fn func(Expr)) {
	switch v := s.(type) {
	case *Select:
		for _, it := range v.Items {
			WalkExprs(it.Expr, fn)
		}
		WalkExprs(v.Where, fn)
		for _, g := range v.GroupBy {
			WalkExprs(g, fn)
		}
		WalkExprs(v.Having, fn)
		for _, o := range v.OrderBy {
			WalkExprs(o.Expr, fn)
		}
	case *Insert:
		for _, row := range v.Rows {
			for _, e := range row {
				WalkExprs(e, fn)
			}
		}
	case *Update:
		for _, a := range v.Set {
			WalkExprs(a.Value, fn)
		}
		WalkExprs(v.Where, fn)
	case *Delete:
		WalkExprs(v.Where, fn)
	}
}

// Conjuncts flattens an AND tree into its conjunct list. A nil expression
// yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*AndExpr); ok {
		return append(Conjuncts(a.Left), Conjuncts(a.Right)...)
	}
	return []Expr{e}
}

// AndAll rebuilds a conjunction from a list (nil for empty).
func AndAll(list []Expr) Expr {
	var out Expr
	for _, e := range list {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &AndExpr{Left: out, Right: e}
		}
	}
	return out
}
