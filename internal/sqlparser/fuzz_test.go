package sqlparser

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse throws arbitrary byte soup at the SQL parser. The parser sits on
// the trace-ingestion boundary — every line of an untrusted profiler trace
// reaches it — so it must reject garbage with an error, never a panic, and
// whatever it does accept must survive templatization: Signature (the
// workload-compression partition key) must be deterministic, parseable, and
// a fixed point under its own re-parse.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 10 ORDER BY a",
		"SELECT DISTINCT TOP 10 a FROM t WHERE name LIKE 'abc%'",
		"SELECT a FROM t WHERE a IN (1, 2, 3) AND (b = 2 OR c <> 3)",
		"SELECT t.a, s.b FROM t, s WHERE t.id = s.id",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = a + 1, b = 'z' WHERE id = 5",
		"DELETE FROM t WHERE id < 100",
		"SELECT SUM(amt) FROM t WHERE a = ?;",
		"SELECT a FROM t WHERE a ==",
		"select\t*\nfrom t",
		"'unterminated",
		"SELECT (((((((1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		sig := Signature(stmt)
		if strings.TrimSpace(sig) == "" {
			t.Fatalf("accepted statement %q has empty signature", sql)
		}
		if h := SignatureHash(stmt); len(h) != 16 {
			t.Fatalf("signature hash %q is not 8 bytes hex", h)
		}
		if !utf8.ValidString(sig) {
			// The deparser only ever concatenates input substrings and ASCII,
			// so invalid UTF-8 in a signature means a literal was mangled.
			t.Fatalf("signature %q of %q is not valid UTF-8", sig, sql)
		}
		// The signature is deparsed SQL: it must parse, and templatizing it
		// again must be a fixed point (all constants already stripped).
		stmt2, err := Parse(sig)
		if err != nil {
			t.Fatalf("signature %q of accepted statement %q does not re-parse: %v", sig, sql, err)
		}
		if sig2 := Signature(stmt2); sig2 != sig {
			t.Fatalf("signature is not a fixed point: %q → %q", sig, sig2)
		}
	})
}
