// Package sqlparser implements a lexer, abstract syntax tree, and
// recursive-descent parser for the SQL subset the tuning advisor consumes:
// SELECT with joins / WHERE / GROUP BY / ORDER BY / aggregates / TOP,
// and INSERT / UPDATE / DELETE. It also provides statement deparsing and the
// constant-insensitive query signature used by workload compression
// (paper §5.1: two queries have the same signature if they are identical in
// all respects except for the constants referenced in the query).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , . * and operators
	tokParam // '?' placeholder
)

type token struct {
	kind tokenKind
	text string // for idents: original text; keyword matching is case-insensitive
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; SQL statements are short enough
// that this is simpler and faster than a streaming lexer.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	// Identifiers are scanned as decoded runes, not bytes: classifying a raw
	// byte with the unicode tables accepts any 0x80–0xFF byte whose Latin-1
	// codepoint happens to be a letter (0xFF = 'ÿ'), yielding ident tokens
	// that are not valid UTF-8. Those survive into the AST, and the first
	// case-mapping in deparse silently rewrites them to U+FFFD — so the
	// statement's own signature no longer parses. Reject invalid UTF-8 here,
	// with the offset, while the byte is still addressable.
	r, rSize := utf8.DecodeRuneInString(l.src[l.pos:])
	if r == utf8.RuneError && rSize == 1 {
		return token{}, fmt.Errorf("sqlparser: invalid UTF-8 byte 0x%02x at %d", c, start)
	}
	switch {
	case isIdentStart(r):
		for l.pos < len(l.src) {
			pr, prSize := utf8.DecodeRuneInString(l.src[l.pos:])
			if pr == utf8.RuneError && prSize == 1 {
				return token{}, fmt.Errorf("sqlparser: invalid UTF-8 byte 0x%02x at %d", l.src[l.pos], l.pos)
			}
			if !isIdentPart(pr) {
				break
			}
			l.pos += prSize
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
		seenDot := false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if d == '.' {
				if seenDot {
					break
				}
				seenDot = true
				l.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			l.pos++
		}
		text := l.src[start:l.pos]
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return token{}, fmt.Errorf("sqlparser: bad number %q at %d", text, start)
		}
		return token{kind: tokNumber, text: text, num: f, pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sqlparser: unterminated string at %d", start)
			}
			d := l.src[l.pos]
			if d == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(d)
			l.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokPunct, text: "<>", pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlparser: unexpected '!' at %d", start)
	case strings.ContainsRune("(),.*=+-/;", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return token{}, fmt.Errorf("sqlparser: unexpected character %q at %d", r, start)
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '['
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '[' || r == ']'
}
