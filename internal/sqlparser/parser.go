package sqlparser

import (
	"fmt"
	"strings"
)

// Parse parses one SQL statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlparser: trailing input at %s", p.peek())
	}
	return stmt, nil
}

// MustParse parses sql and panics on error; intended for tests and
// statically known query templates.
func MustParse(sql string) Statement {
	s, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlparser: expected %s, found %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

// accept consumes the punctuation token if present.
func (p *parser) accept(punct string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == punct {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(punct string) error {
	if !p.accept(punct) {
		return fmt.Errorf("sqlparser: expected %q, found %s", punct, p.peek())
	}
	return nil
}

var reservedAfterTable = map[string]bool{
	"where": true, "group": true, "order": true, "having": true,
	"join": true, "inner": true, "left": true, "right": true, "on": true,
	"set": true, "values": true, "and": true, "or": true, "union": true,
	"top": true, "as": true, "from": true, "desc": true, "asc": true,
	"between": true, "in": true, "like": true, "not": true, "distinct": true,
	"option": true, "limit": true,
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("select"):
		return p.parseSelect()
	case p.isKeyword("insert"):
		return p.parseInsert()
	case p.isKeyword("update"):
		return p.parseUpdate()
	case p.isKeyword("delete"):
		return p.parseDelete()
	default:
		return nil, fmt.Errorf("sqlparser: expected statement, found %s", p.peek())
	}
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.acceptKeyword("distinct") {
		sel.Distinct = true
	}
	if p.acceptKeyword("top") {
		t := p.advance()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlparser: TOP expects a number, found %s", t)
		}
		sel.Top = int(t.num)
	}
	// Select list.
	for {
		if p.accept("*") {
			sel.Items = append(sel.Items, SelectItem{Expr: nil})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("as") {
				a := p.advance()
				if a.kind != tokIdent {
					return nil, fmt.Errorf("sqlparser: expected alias, found %s", a)
				}
				item.Alias = strings.ToLower(a.text)
			} else if t := p.peek(); t.kind == tokIdent && !reservedAfterTable[strings.ToLower(t.text)] {
				item.Alias = strings.ToLower(p.advance().text)
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	var joinConds []Expr
	if err := p.parseFromList(sel, &joinConds); err != nil {
		return nil, err
	}
	if p.acceptKeyword("where") {
		w, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		joinConds = append(joinConds, w)
	}
	sel.Where = AndAll(joinConds)
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColName()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		h, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				it.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			sel.OrderBy = append(sel.OrderBy, it)
			if !p.accept(",") {
				break
			}
		}
	}
	return sel, nil
}

// parseFromList parses "t1 a, t2 b" and "t1 a JOIN t2 b ON cond ..." forms,
// appending ON conditions to joinConds (they are folded into WHERE).
func (p *parser) parseFromList(sel *Select, joinConds *[]Expr) error {
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return err
		}
		sel.From = append(sel.From, ref)
		for {
			inner := p.acceptKeyword("inner")
			if !p.isKeyword("join") {
				if inner {
					return fmt.Errorf("sqlparser: expected JOIN after INNER, found %s", p.peek())
				}
				break
			}
			p.advance() // join
			jref, err := p.parseTableRef()
			if err != nil {
				return err
			}
			sel.From = append(sel.From, jref)
			if err := p.expectKeyword("on"); err != nil {
				return err
			}
			cond, err := p.parseOrExpr()
			if err != nil {
				return err
			}
			*joinConds = append(*joinConds, cond)
		}
		if !p.accept(",") {
			return nil
		}
	}
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("sqlparser: expected table name, found %s", t)
	}
	ref := TableRef{Name: strings.ToLower(t.text)}
	if p.acceptKeyword("as") {
		a := p.advance()
		if a.kind != tokIdent {
			return TableRef{}, fmt.Errorf("sqlparser: expected alias, found %s", a)
		}
		ref.Alias = strings.ToLower(a.text)
	} else if nt := p.peek(); nt.kind == tokIdent && !reservedAfterTable[strings.ToLower(nt.text)] {
		ref.Alias = strings.ToLower(p.advance().text)
	}
	return ref, nil
}

func (p *parser) parseColName() (*ColName, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected column name, found %s", t)
	}
	c := &ColName{Name: strings.ToLower(t.text)}
	if p.accept(".") {
		n := p.advance()
		if n.kind != tokIdent {
			return nil, fmt.Errorf("sqlparser: expected column after '.', found %s", n)
		}
		c.Qualifier = c.Name
		c.Name = strings.ToLower(n.text)
	}
	return c, nil
}

// Boolean expression grammar: or → and → not → predicate.
func (p *parser) parseOrExpr() (Expr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		left = &OrExpr{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAndExpr() (Expr, error) {
	left, err := p.parseNotExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNotExpr()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNotExpr() (Expr, error) {
	if p.acceptKeyword("not") {
		inner, err := p.parseNotExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	// A '(' here may open either a boolean group "(a = 1 OR b = 2)" or a
	// parenthesized scalar "(a + b) > 5". Try the boolean reading first and
	// backtrack to the scalar reading if it fails.
	if p.peek().kind == tokPunct && p.peek().text == "(" {
		save := p.i
		p.advance()
		e, err := p.parseOrExpr()
		if err == nil && p.accept(")") {
			// "(x) = 5" parses x as a lone scalar and fails inside
			// parseOrExpr, so reaching here means a genuine boolean group.
			return e, nil
		}
		p.i = save // backtrack: parse as scalar comparison below
	}
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("between") {
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("not") {
		if p.acceptKeyword("like") {
			right, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &NotExpr{Inner: &ComparisonExpr{Op: "like", Left: left, Right: right}}, nil
		}
		if p.acceptKeyword("in") {
			in, err := p.parseInList(left)
			if err != nil {
				return nil, err
			}
			return &NotExpr{Inner: in}, nil
		}
		return nil, fmt.Errorf("sqlparser: expected LIKE or IN after NOT, found %s", p.peek())
	}
	if p.acceptKeyword("like") {
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ComparisonExpr{Op: "like", Left: left, Right: right}, nil
	}
	if p.acceptKeyword("in") {
		return p.parseInList(left)
	}
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "<", ">", "<=", ">=", "<>":
			p.advance()
			right, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &ComparisonExpr{Op: t.text, Left: left, Right: right}, nil
		}
	}
	return nil, fmt.Errorf("sqlparser: expected comparison operator, found %s", t)
}

func (p *parser) parseInList(left Expr) (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	in := &InExpr{Expr: left}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return in, nil
}

// Scalar expression grammar: addsub → muldiv → primary.
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			p.advance()
			right, err := p.parseMulDiv()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMulDiv() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && (t.text == "*" || t.text == "/") {
			p.advance()
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

var aggFuncs = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &Literal{Kind: LitNumber, F: t.num}, nil
	case tokString:
		p.advance()
		return &Literal{Kind: LitString, S: t.text}, nil
	case tokParam:
		p.advance()
		return &Literal{Kind: LitParam}, nil
	case tokIdent:
		name := strings.ToLower(t.text)
		if aggFuncs[name] && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
			p.advance() // func name
			p.advance() // (
			f := &FuncExpr{Name: name}
			if p.accept("*") {
				f.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Arg = arg
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return f, nil
		}
		return p.parseColName()
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.advance()
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: "*", Left: &Literal{Kind: LitNumber, F: -1}, Right: e}, nil
		}
	}
	return nil, fmt.Errorf("sqlparser: expected expression, found %s", t)
}

func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	t := p.advance()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected table name, found %s", t)
	}
	ins := &Insert{Table: strings.ToLower(t.text)}
	if p.accept("(") {
		for {
			c := p.advance()
			if c.kind != tokIdent {
				return nil, fmt.Errorf("sqlparser: expected column name, found %s", c)
			}
			ins.Columns = append(ins.Columns, strings.ToLower(c.text))
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	if err := p.expectKeyword("update"); err != nil {
		return nil, err
	}
	t := p.advance()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected table name, found %s", t)
	}
	u := &Update{Table: strings.ToLower(t.text)}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	for {
		c := p.advance()
		if c.kind != tokIdent {
			return nil, fmt.Errorf("sqlparser: expected column name, found %s", c)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: strings.ToLower(c.text), Value: v})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		w, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	if err := p.expectKeyword("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	t := p.advance()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected table name, found %s", t)
	}
	d := &Delete{Table: strings.ToLower(t.text)}
	if p.acceptKeyword("where") {
		w, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}
