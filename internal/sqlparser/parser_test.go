package sqlparser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleSelect(t *testing.T) {
	s := MustParse("SELECT a, COUNT(*) FROM T WHERE X < 10 GROUP BY A").(*Select)
	if len(s.Items) != 2 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if _, ok := s.Items[1].Expr.(*FuncExpr); !ok {
		t.Fatal("second item should be aggregate")
	}
	if len(s.From) != 1 || s.From[0].Name != "t" {
		t.Fatalf("from = %+v", s.From)
	}
	cmp, ok := s.Where.(*ComparisonExpr)
	if !ok || cmp.Op != "<" {
		t.Fatalf("where = %#v", s.Where)
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0].Name != "a" {
		t.Fatalf("group by = %+v", s.GroupBy)
	}
}

func TestParseJoinFolding(t *testing.T) {
	s := MustParse(`SELECT c.name, SUM(o.total) FROM customers c JOIN orders o ON c.id = o.cust_id WHERE o.total > 100 GROUP BY c.name ORDER BY c.name DESC`).(*Select)
	if len(s.From) != 2 {
		t.Fatalf("from = %+v", s.From)
	}
	conj := Conjuncts(s.Where)
	if len(conj) != 2 {
		t.Fatalf("JOIN ON should fold into WHERE: %d conjuncts", len(conj))
	}
	if !s.OrderBy[0].Desc {
		t.Fatal("DESC lost")
	}
}

func TestParseCommaJoin(t *testing.T) {
	s := MustParse(`SELECT * FROM a, b, c WHERE a.x = b.x AND b.y = c.y AND a.z = 3`).(*Select)
	if len(s.From) != 3 {
		t.Fatalf("from = %+v", s.From)
	}
	if len(Conjuncts(s.Where)) != 3 {
		t.Fatal("conjunct count")
	}
	if s.Items[0].Expr != nil {
		t.Fatal("star select should have nil Expr")
	}
}

func TestParsePredicates(t *testing.T) {
	cases := []string{
		"SELECT a FROM t WHERE a BETWEEN 1 AND 10",
		"SELECT a FROM t WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE name LIKE 'abc%'",
		"SELECT a FROM t WHERE name NOT LIKE 'abc%'",
		"SELECT a FROM t WHERE a NOT IN (1, 2)",
		"SELECT a FROM t WHERE NOT a = 1",
		"SELECT a FROM t WHERE (a = 1 OR b = 2) AND c <> 3",
		"SELECT a FROM t WHERE (a + b) > 5",
		"SELECT a FROM t WHERE a >= 1 AND a <= 2 OR b = 3",
		"SELECT a FROM t WHERE a = ?",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
}

func TestParseTPCHStyle(t *testing.T) {
	q := `SELECT l_returnflag, l_linestatus, SUM(l_quantity) sum_qty,
	  SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
	  AVG(l_discount) avg_disc, COUNT(*) AS count_order
	FROM lineitem
	WHERE l_shipdate <= 2400
	GROUP BY l_returnflag, l_linestatus
	ORDER BY l_returnflag, l_linestatus`
	s := MustParse(q).(*Select)
	if len(s.Items) != 6 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if s.Items[2].Alias != "sum_qty" {
		t.Fatalf("implicit alias lost: %+v", s.Items[2])
	}
	if s.Items[3].Alias != "sum_disc_price" {
		t.Fatal("AS alias lost")
	}
}

func TestParseDML(t *testing.T) {
	ins := MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	ins2 := MustParse("INSERT INTO t VALUES (1, 2)").(*Insert)
	if len(ins2.Columns) != 0 || len(ins2.Rows) != 1 {
		t.Fatalf("insert2 = %+v", ins2)
	}
	up := MustParse("UPDATE t SET a = a + 1, b = 'z' WHERE id = 5").(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	del := MustParse("DELETE FROM t WHERE id < 100").(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("delete = %+v", del)
	}
}

func TestParseTopDistinct(t *testing.T) {
	s := MustParse("SELECT DISTINCT TOP 10 a FROM t ORDER BY a").(*Select)
	if !s.Distinct || s.Top != 10 {
		t.Fatalf("select = %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT a FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a ==",
		"SELECT a FROM t GROUP a",
		"INSERT INTO t",
		"UPDATE t SET",
		"DELETE t",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t trailing garbage here",
		"SELECT 'unterminated FROM t",
		// Invalid UTF-8 must be rejected at the lexer: 0xFF read as a
		// Latin-1 rune is the letter 'ÿ', and accepting it as an identifier
		// produces an AST whose deparsed signature no longer parses (found
		// by FuzzParse; crasher kept in testdata/fuzz/FuzzParse).
		"SELECT(0)FROM \xff",
		"SELECT a\xc3\x28 FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestDeparseRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT a, COUNT(*) FROM t WHERE x < 10 GROUP BY a",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 10 ORDER BY a DESC",
		"SELECT DISTINCT TOP 5 a, b FROM t1, t2 WHERE t1.x = t2.y",
		"INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, 'y')",
		"UPDATE t SET a = 1 WHERE b = 2",
		"DELETE FROM t WHERE id IN (1, 2, 3)",
		"SELECT SUM(p * (1 - d)) FROM t HAVING SUM(p) > 100",
	}
	for _, sql := range cases {
		s1, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		text := s1.String()
		s2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q (deparsed %q): %v", sql, text, err)
		}
		if s2.String() != text {
			t.Errorf("deparse not a fixpoint:\n 1: %s\n 2: %s", text, s2.String())
		}
	}
}

func TestSignature(t *testing.T) {
	a := MustParse("SELECT a FROM t WHERE x = 5 AND name = 'bob'")
	b := MustParse("SELECT a FROM t WHERE x = 99 AND name = 'alice'")
	c := MustParse("SELECT a FROM t WHERE y = 5 AND name = 'bob'")
	if Signature(a) != Signature(b) {
		t.Fatalf("same template must share signature:\n%s\n%s", Signature(a), Signature(b))
	}
	if Signature(a) == Signature(c) {
		t.Fatal("different columns must differ")
	}
	if SignatureHash(a) != SignatureHash(b) {
		t.Fatal("hash mismatch on same template")
	}
	// IN lists of different lengths share a template.
	d := MustParse("SELECT a FROM t WHERE x IN (1, 2)")
	e := MustParse("SELECT a FROM t WHERE x IN (3, 4, 5, 6)")
	if Signature(d) != Signature(e) {
		t.Fatal("IN lists should collapse in signature")
	}
}

func TestSignatureDoesNotMutate(t *testing.T) {
	a := MustParse("SELECT a FROM t WHERE x = 5")
	before := a.String()
	_ = Signature(a)
	if a.String() != before {
		t.Fatal("Signature must not mutate the statement")
	}
}

func TestConstants(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE x = 5 AND y BETWEEN 2 AND 8 AND name = 'q'")
	consts := Constants(s)
	if len(consts) != 4 {
		t.Fatalf("constants = %d, want 4", len(consts))
	}
}

// Property: for randomly generated selects from a template grammar, parse ∘
// deparse is a fixpoint and signatures are constant-invariant.
func TestParsePropertyRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func(v1, v2 int, s string) string {
		cols := []string{"a", "b", "c", "d"}
		col := cols[abs(v1)%len(cols)]
		col2 := cols[abs(v2)%len(cols)]
		if len(s) > 6 {
			s = s[:6]
		}
		s = strings.ReplaceAll(s, "'", "")
		return fmt.Sprintf(
			"SELECT %s, SUM(%s) FROM t WHERE %s < %d AND name = '%s' GROUP BY %s ORDER BY %s",
			col, col2, col2, abs(v1)%1000, s, col, col)
	}
	f := func(v1, v2 int, s string) bool {
		sql := gen(v1, v2, s)
		st, err := Parse(sql)
		if err != nil {
			t.Logf("parse error on %q: %v", sql, err)
			return false
		}
		re, err := Parse(st.String())
		if err != nil || re.String() != st.String() {
			return false
		}
		// Changing only constants preserves the signature.
		sql2 := gen(v1, v2, s+"zz")
		st2, err := Parse(sql2)
		if err != nil {
			return false
		}
		return Signature(st) == Signature(st2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // math.MinInt
			return 0
		}
		return -v
	}
	return v
}

func TestWalkStatementCoversAllClauses(t *testing.T) {
	s := MustParse("SELECT a, SUM(b) FROM t WHERE c = 1 GROUP BY a HAVING SUM(b) > 2 ORDER BY a")
	var cols, lits int
	WalkStatement(s, func(e Expr) {
		switch e.(type) {
		case *ColName:
			cols++
		case *Literal:
			lits++
		}
	})
	if cols < 5 {
		t.Fatalf("cols = %d, want >= 5 (select, agg arg, where, group, having, order)", cols)
	}
	if lits != 2 {
		t.Fatalf("lits = %d, want 2", lits)
	}
}

func TestConjunctsAndAll(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3").(*Select)
	conj := Conjuncts(s.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if AndAll(nil) != nil {
		t.Fatal("AndAll(nil) should be nil")
	}
	rebuilt := AndAll(conj)
	if len(Conjuncts(rebuilt)) != 3 {
		t.Fatal("AndAll should rebuild the conjunction")
	}
}

func TestLexerEdgeCases(t *testing.T) {
	if _, err := Parse("SELECT a FROM t -- a comment\nWHERE a = 1"); err != nil {
		t.Fatalf("comment handling: %v", err)
	}
	if _, err := Parse("SELECT a FROM t WHERE a != 3"); err != nil {
		t.Fatalf("!= should normalize to <>: %v", err)
	}
	s := MustParse("SELECT a FROM t WHERE a != 3").(*Select)
	if !strings.Contains(s.String(), "<>") {
		t.Fatal("!= should deparse as <>")
	}
	if _, err := Parse("SELECT a FROM t WHERE a = 1.5 AND b = .25"); err != nil {
		t.Fatalf("decimal numbers: %v", err)
	}
	if _, err := Parse("SELECT a FROM t WHERE a = -.5"); err != nil {
		t.Fatalf("negative numbers: %v", err)
	}
}
