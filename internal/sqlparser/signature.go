package sqlparser

import (
	"crypto/sha256"
	"encoding/hex"
)

// Signature returns the templatization key of a statement: the deparsed SQL
// with every constant replaced by a '?' placeholder. Two statements have the
// same signature iff they are identical in all respects except for the
// constants referenced (paper §5.1). Workload compression partitions the
// workload by this key.
func Signature(s Statement) string {
	return stripConstants(s).String()
}

// SignatureHash returns a short stable hash of the signature, convenient as
// a map key and in reports.
func SignatureHash(s Statement) string {
	h := sha256.Sum256([]byte(Signature(s)))
	return hex.EncodeToString(h[:8])
}

// stripConstants deep-copies the statement with all literals replaced by
// parameter placeholders.
func stripConstants(s Statement) Statement {
	switch v := s.(type) {
	case *Select:
		out := &Select{Top: v.Top, Distinct: v.Distinct}
		for _, it := range v.Items {
			out.Items = append(out.Items, SelectItem{Expr: stripExpr(it.Expr), Alias: it.Alias})
		}
		out.From = append(out.From, v.From...)
		out.Where = stripExpr(v.Where)
		for _, g := range v.GroupBy {
			out.GroupBy = append(out.GroupBy, &ColName{Qualifier: g.Qualifier, Name: g.Name})
		}
		out.Having = stripExpr(v.Having)
		for _, o := range v.OrderBy {
			out.OrderBy = append(out.OrderBy, OrderItem{Expr: stripExpr(o.Expr), Desc: o.Desc})
		}
		return out
	case *Insert:
		out := &Insert{Table: v.Table, Columns: append([]string(nil), v.Columns...)}
		for _, row := range v.Rows {
			nr := make([]Expr, len(row))
			for i, e := range row {
				nr[i] = stripExpr(e)
			}
			out.Rows = append(out.Rows, nr)
		}
		return out
	case *Update:
		out := &Update{Table: v.Table, Where: stripExpr(v.Where)}
		for _, a := range v.Set {
			out.Set = append(out.Set, Assignment{Column: a.Column, Value: stripExpr(a.Value)})
		}
		return out
	case *Delete:
		return &Delete{Table: v.Table, Where: stripExpr(v.Where)}
	default:
		return s
	}
}

func stripExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case *Literal:
		return &Literal{Kind: LitParam}
	case *ColName:
		return &ColName{Qualifier: v.Qualifier, Name: v.Name}
	case *BinaryExpr:
		return &BinaryExpr{Op: v.Op, Left: stripExpr(v.Left), Right: stripExpr(v.Right)}
	case *FuncExpr:
		return &FuncExpr{Name: v.Name, Star: v.Star, Arg: stripExpr(v.Arg)}
	case *ComparisonExpr:
		return &ComparisonExpr{Op: v.Op, Left: stripExpr(v.Left), Right: stripExpr(v.Right)}
	case *BetweenExpr:
		return &BetweenExpr{Expr: stripExpr(v.Expr), Lo: stripExpr(v.Lo), Hi: stripExpr(v.Hi)}
	case *InExpr:
		out := &InExpr{Expr: stripExpr(v.Expr)}
		// IN lists of different lengths still share a template; collapse the
		// list to a single placeholder so "IN (1,2)" matches "IN (1,2,3)".
		out.List = []Expr{&Literal{Kind: LitParam}}
		return out
	case *AndExpr:
		return &AndExpr{Left: stripExpr(v.Left), Right: stripExpr(v.Right)}
	case *OrExpr:
		return &OrExpr{Left: stripExpr(v.Left), Right: stripExpr(v.Right)}
	case *NotExpr:
		return &NotExpr{Inner: stripExpr(v.Inner)}
	default:
		return e
	}
}

// Constants returns every literal in the statement in deterministic walk
// order. Workload compression's distance function compares the constant
// vectors of two statements sharing a signature.
func Constants(s Statement) []*Literal {
	var out []*Literal
	WalkStatement(s, func(e Expr) {
		if l, ok := e.(*Literal); ok {
			out = append(out, l)
		}
	})
	return out
}
