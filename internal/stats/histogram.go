// Package stats implements the statistics subsystem the optimizer relies on:
// single-column histograms with multi-column density information (the shape
// SQL Server creates for a statistic on columns (A,B,C): a histogram on the
// leading column A and densities for each leading prefix (A), (A,B), (A,B,C)
// — paper §5.2), sampled statistic creation with I/O accounting, selectivity
// estimation, and the reduced-statistics-creation greedy algorithm.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultBuckets is the number of histogram steps built per statistic.
const DefaultBuckets = 64

// Histogram is an equi-depth histogram over numeric values (strings are
// dictionary-encoded upstream).
type Histogram struct {
	Min       float64
	TotalRows float64
	Buckets   []Bucket
}

// Bucket covers the half-open value range (prevHi, Hi] — with the first
// bucket covering [Min, Hi] — holding Rows rows and Distinct distinct values.
type Bucket struct {
	Hi       float64
	Rows     float64
	Distinct float64
}

// NewHistogramFromValues builds an equi-depth histogram from a sorted-or-not
// sample of values, scaled so the histogram's total mass equals totalRows.
func NewHistogramFromValues(values []float64, totalRows int64, buckets int) *Histogram {
	if len(values) == 0 || totalRows <= 0 {
		return &Histogram{TotalRows: float64(totalRows)}
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	if buckets > len(v) {
		buckets = len(v)
	}
	scale := float64(totalRows) / float64(len(v))
	h := &Histogram{Min: v[0], TotalRows: float64(totalRows)}
	per := len(v) / buckets
	rem := len(v) % buckets
	idx := 0
	for b := 0; b < buckets; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		chunk := v[idx : idx+n]
		idx += n
		distinct := 1.0
		for i := 1; i < len(chunk); i++ {
			if chunk[i] != chunk[i-1] {
				distinct++
			}
		}
		h.Buckets = append(h.Buckets, Bucket{
			Hi:       chunk[len(chunk)-1],
			Rows:     float64(n) * scale,
			Distinct: distinct,
		})
	}
	// Merge buckets that ended on the same Hi (possible with heavy dups).
	merged := h.Buckets[:0]
	for _, b := range h.Buckets {
		if n := len(merged); n > 0 && merged[n-1].Hi == b.Hi {
			merged[n-1].Rows += b.Rows
			continue
		}
		merged = append(merged, b)
	}
	h.Buckets = merged
	return h
}

// NewUniformHistogram synthesizes a histogram for a column assumed uniform
// over [min, max] with the given row and distinct counts. Used when only
// catalog metadata (no data) is available.
func NewUniformHistogram(min, max float64, rows, distinct int64, buckets int) *Histogram {
	if rows <= 0 {
		return &Histogram{TotalRows: 0}
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	if distinct <= 0 {
		distinct = rows
	}
	if int64(buckets) > distinct {
		buckets = int(distinct)
	}
	if max < min {
		max = min
	}
	h := &Histogram{Min: min, TotalRows: float64(rows)}
	span := max - min
	for b := 1; b <= buckets; b++ {
		hi := min + span*float64(b)/float64(buckets)
		h.Buckets = append(h.Buckets, Bucket{
			Hi:       hi,
			Rows:     float64(rows) / float64(buckets),
			Distinct: float64(distinct) / float64(buckets),
		})
	}
	return h
}

// Rows returns the total row mass of the histogram.
func (h *Histogram) Rows() float64 {
	if h == nil {
		return 0
	}
	return h.TotalRows
}

// Max returns the upper bound of the histogram's domain.
func (h *Histogram) Max() float64 {
	if h == nil || len(h.Buckets) == 0 {
		return 0
	}
	return h.Buckets[len(h.Buckets)-1].Hi
}

// Distinct returns the estimated number of distinct values.
func (h *Histogram) Distinct() float64 {
	if h == nil {
		return 0
	}
	var d float64
	for _, b := range h.Buckets {
		d += b.Distinct
	}
	if d < 1 {
		d = 1
	}
	return d
}

// SelLess estimates the fraction of rows with value < v (strict), using
// linear interpolation within the containing bucket.
func (h *Histogram) SelLess(v float64) float64 {
	if h == nil || h.TotalRows <= 0 || len(h.Buckets) == 0 {
		return 0.3 // guess in the absence of a histogram
	}
	if v <= h.Min {
		return 0
	}
	lo := h.Min
	var acc float64
	for _, b := range h.Buckets {
		if v > b.Hi {
			acc += b.Rows
			lo = b.Hi
			continue
		}
		width := b.Hi - lo
		if width <= 0 {
			// Point bucket: v in (lo, hi] with lo==hi means v==hi; strict
			// less-than excludes the bucket.
			break
		}
		acc += b.Rows * (v - lo) / width
		break
	}
	return clamp01(acc / h.TotalRows)
}

// SelEq estimates the fraction of rows with value == v.
func (h *Histogram) SelEq(v float64) float64 {
	if h == nil || h.TotalRows <= 0 || len(h.Buckets) == 0 {
		return 0.01
	}
	if v < h.Min {
		return 0
	}
	lo := h.Min
	for _, b := range h.Buckets {
		if v > b.Hi {
			lo = b.Hi
			continue
		}
		_ = lo
		d := b.Distinct
		if d < 1 {
			d = 1
		}
		return clamp01((b.Rows / d) / h.TotalRows)
	}
	return 0
}

// SelRange estimates the fraction of rows in the range between lo and hi.
// Either bound may be infinite (use math.Inf). Inclusive bounds widen the
// estimate by the equality mass at the bound.
func (h *Histogram) SelRange(lo, hi float64, incLo, incHi bool) float64 {
	if h == nil {
		return 0.3
	}
	if hi < lo {
		return 0
	}
	s := h.SelLess(hi) - h.SelLess(lo)
	if incHi && !math.IsInf(hi, 1) {
		s += h.SelEq(hi)
	}
	if !incLo && !math.IsInf(lo, -1) {
		s -= h.SelEq(lo)
	}
	return clamp01(s)
}

// String renders a compact description for debugging.
func (h *Histogram) String() string {
	if h == nil {
		return "hist(nil)"
	}
	return fmt.Sprintf("hist(rows=%.0f steps=%d min=%g max=%g)", h.TotalRows, len(h.Buckets), h.Min, h.Max())
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	if math.IsNaN(f) {
		return 0
	}
	return f
}
