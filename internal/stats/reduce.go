package stats

import (
	"sort"
	"strings"
)

// Request names one statistic DTA would have to create: an ordered column
// list on a table, corresponding to the key columns of a what-if index.
type Request struct {
	Table   string
	Columns []string
}

// Key returns the canonical identity of the request.
func (r Request) Key() string { return StatKey(r.Table, r.Columns) }

func (r Request) canon() Request {
	out := Request{Table: strings.ToLower(r.Table), Columns: make([]string, len(r.Columns))}
	for i, c := range r.Columns {
		out.Columns[i] = strings.ToLower(c)
	}
	return out
}

// Reduce implements the reduced-statistics-creation algorithm of paper §5.2.
//
// Given a set of requested statistics S, where each statistic on (A,B,C)
// would contain a histogram on its leading column A and density information
// on each leading prefix (A), (A,B), (A,B,C), Reduce returns a small subset
// S' ⊆ S that contains the same histogram and density information as S:
//
//	Step 1: build the H-List (columns needing histograms) and D-List
//	        (unordered column sets needing densities; Density(A,B) =
//	        Density(B,A), so (B,A) never enters the D-List when (A,B) has).
//	Step 2: greedily pick the remaining statistic covering the most
//	        uncovered H-List and D-List entries.
//	Step 3: remove the covered entries; repeat until both lists are empty.
//
// The result preserves request order among the chosen statistics, and the
// reduction never changes recommendation quality — it only removes
// redundant statistical information.
func Reduce(reqs []Request) []Request {
	canon := make([]Request, len(reqs))
	seen := map[string]bool{}
	var uniq []Request
	for i, r := range reqs {
		canon[i] = r.canon()
		if k := canon[i].Key(); !seen[k] && len(canon[i].Columns) > 0 {
			seen[k] = true
			uniq = append(uniq, canon[i])
		}
	}
	if len(uniq) <= 1 {
		return uniq
	}

	// Step 1: H-List and D-List.
	hList := map[string]bool{} // "table|col"
	dList := map[string]bool{} // "table|sortedColSet"
	for _, r := range uniq {
		hList[r.Table+"|"+r.Columns[0]] = true
		for p := 1; p <= len(r.Columns); p++ {
			dList[r.Table+"|"+canonSet(r.Columns[:p])] = true
		}
	}

	remaining := append([]Request(nil), uniq...)
	var chosen []Request
	for len(hList)+len(dList) > 0 && len(remaining) > 0 {
		// Step 2: pick the statistic covering the most uncovered entries.
		// Ties break toward the wider statistic, then input order, keeping
		// the algorithm deterministic.
		bestIdx, bestCover := -1, -1
		for i, r := range remaining {
			cover := 0
			if hList[r.Table+"|"+r.Columns[0]] {
				cover++
			}
			for p := 1; p <= len(r.Columns); p++ {
				if dList[r.Table+"|"+canonSet(r.Columns[:p])] {
					cover++
				}
			}
			if cover > bestCover || (cover == bestCover && len(r.Columns) > len(remaining[bestIdx].Columns)) {
				bestIdx, bestCover = i, cover
			}
		}
		if bestCover <= 0 {
			break // everything left is redundant
		}
		pick := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		chosen = append(chosen, pick)

		// Step 3: remove covered entries.
		delete(hList, pick.Table+"|"+pick.Columns[0])
		for p := 1; p <= len(pick.Columns); p++ {
			delete(dList, pick.Table+"|"+canonSet(pick.Columns[:p]))
		}
	}

	// Preserve the original request order in the output for stable reports.
	rank := map[string]int{}
	for i, r := range uniq {
		rank[r.Key()] = i
	}
	sort.Slice(chosen, func(i, j int) bool { return rank[chosen[i].Key()] < rank[chosen[j].Key()] })
	return chosen
}

// Satisfied reports whether the store already carries all information the
// requested statistic would provide: a histogram on the leading column and
// a density for every leading prefix (as an unordered set). A store holding
// a statistic on (A,B) satisfies requests for (A) and for (B,A)'s density
// prefix {A,B} without any new create-statistics statement.
func Satisfied(store *Store, r Request) bool {
	r = r.canon()
	if len(r.Columns) == 0 {
		return true
	}
	if !store.CoversHistogram(r.Table, r.Columns[0]) {
		return false
	}
	for p := 1; p <= len(r.Columns); p++ {
		if _, ok := store.DensityFor(r.Table, r.Columns[:p]); !ok {
			return false
		}
	}
	return true
}

// Covers verifies that the reduced set carries the same histogram and
// density information as the full set: every leading column of full has a
// histogram source in reduced, and every leading prefix (as a set) of full
// has a density source in reduced. Exported so tests and callers can assert
// the §5.2 invariant.
func Covers(reduced, full []Request) bool {
	hHave := map[string]bool{}
	dHave := map[string]bool{}
	for _, r := range reduced {
		r = r.canon()
		if len(r.Columns) == 0 {
			continue
		}
		hHave[r.Table+"|"+r.Columns[0]] = true
		for p := 1; p <= len(r.Columns); p++ {
			dHave[r.Table+"|"+canonSet(r.Columns[:p])] = true
		}
	}
	for _, r := range full {
		r = r.canon()
		if len(r.Columns) == 0 {
			continue
		}
		if !hHave[r.Table+"|"+r.Columns[0]] {
			return false
		}
		for p := 1; p <= len(r.Columns); p++ {
			if !dHave[r.Table+"|"+canonSet(r.Columns[:p])] {
				return false
			}
		}
	}
	return true
}
