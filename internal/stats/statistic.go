package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
)

// Statistic is one multi-column statistics object, mirroring what SQL Server
// creates: a histogram on the leading column and density information for
// each leading prefix. Density of a column set is the average fraction of
// rows sharing one value combination — 1/distinct — and is order-insensitive:
// Density(A,B) = Density(B,A) (paper §5.2).
type Statistic struct {
	Table   string
	Columns []string // ordered, lower-case
	Hist    *Histogram
	// Densities[i] is the density of the leading prefix Columns[:i+1].
	Densities []float64
	// SampledPages is the I/O charged when this statistic was created.
	SampledPages int64
}

// Key identifies the statistic by table and ordered column list.
func (s *Statistic) Key() string { return StatKey(s.Table, s.Columns) }

// StatKey builds the canonical key for a statistic request.
func StatKey(table string, cols []string) string {
	lc := make([]string, len(cols))
	for i, c := range cols {
		lc[i] = strings.ToLower(c)
	}
	return strings.ToLower(table) + "(" + strings.Join(lc, ",") + ")"
}

// PrefixDensity returns the density of the first n columns (1-based count).
func (s *Statistic) PrefixDensity(n int) float64 {
	if n <= 0 || n > len(s.Densities) {
		return 1
	}
	return s.Densities[n-1]
}

// String renders the statistic for reports.
func (s *Statistic) String() string {
	return fmt.Sprintf("STATISTICS %s %s", s.Key(), s.Hist)
}

// Sampler provides access to actual column data for statistics creation.
// The engine implements it on the production server; on a test server no
// sampler exists and statistics must be imported (paper §5.3).
type Sampler interface {
	// SampleColumn returns up to n values of the column in its numeric
	// encoding, or nil if the table/column has no data.
	SampleColumn(table, column string, n int) []float64
	// SampleRows returns up to n rows projected to the given columns,
	// for multi-column density estimation.
	SampleRows(table string, columns []string, n int) [][]float64
}

// BuildOptions controls statistic creation.
type BuildOptions struct {
	SampleRows int // rows sampled per statistic; 0 = DefaultSampleRows
	Buckets    int // histogram steps; 0 = DefaultBuckets
}

// DefaultSampleRows is the default statistics sampling size.
const DefaultSampleRows = 30000

// Build creates a statistic on the ordered column list of the table. When a
// sampler is available the statistic is computed from sampled data;
// otherwise it is synthesized from catalog metadata under independence and
// uniformity assumptions. The returned statistic carries the sampling I/O
// cost that its creation would impose on the server holding the data.
func Build(cat *catalog.Catalog, table string, cols []string, sampler Sampler, opt BuildOptions) (*Statistic, error) {
	t := cat.ResolveTable(table)
	if t == nil {
		return nil, fmt.Errorf("stats: unknown table %q", table)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("stats: empty column list for table %q", table)
	}
	lc := make([]string, len(cols))
	for i, c := range cols {
		lc[i] = strings.ToLower(c)
		if !t.HasColumn(lc[i]) {
			return nil, fmt.Errorf("stats: table %q has no column %q", table, c)
		}
	}
	sampleRows := opt.SampleRows
	if sampleRows <= 0 {
		sampleRows = DefaultSampleRows
	}

	st := &Statistic{Table: strings.ToLower(t.Name), Columns: lc}
	// Creating a statistic samples a fixed number of pages from the table
	// regardless of how many columns the statistic has — which is exactly
	// why creating fewer, wider statistics wins (paper §5.2).
	samplePages := catalog.PagesFor(int64(sampleRows), t.RowWidth())
	if tp := t.Pages(); samplePages > tp {
		samplePages = tp
	}
	st.SampledPages = samplePages

	lead := t.Column(lc[0])
	if sampler != nil {
		if vals := sampler.SampleColumn(t.Name, lc[0], sampleRows); len(vals) > 0 {
			st.Hist = NewHistogramFromValues(vals, t.Rows, opt.Buckets)
		}
	}
	if st.Hist == nil {
		st.Hist = NewUniformHistogram(lead.Min, lead.Max, t.Rows, lead.Distinct, opt.Buckets)
	}

	// Densities per leading prefix.
	if sampler != nil {
		if rows := sampler.SampleRows(t.Name, lc, sampleRows); len(rows) > 0 {
			st.Densities = densitiesFromSample(rows, t.Rows, len(lc))
		}
	}
	if st.Densities == nil {
		st.Densities = densitiesFromMetadata(t, lc)
	}
	return st, nil
}

// densitiesFromSample estimates prefix densities from sampled rows using a
// first-order scale-up of observed distinct counts.
func densitiesFromSample(rows [][]float64, totalRows int64, ncols int) []float64 {
	out := make([]float64, ncols)
	n := len(rows)
	var buf []byte
	for p := 1; p <= ncols; p++ {
		seen := make(map[string]struct{}, n)
		for _, r := range rows {
			buf = buf[:0]
			for _, v := range r[:p] {
				bits := math.Float64bits(v)
				for shift := 0; shift < 64; shift += 8 {
					buf = append(buf, byte(bits>>shift))
				}
			}
			seen[string(buf)] = struct{}{}
		}
		d := float64(len(seen))
		// If nearly every sampled row is distinct, assume the column scales
		// with the table; otherwise the distinct count is likely saturated.
		if d > 0.9*float64(n) && int64(n) < totalRows {
			d = d * float64(totalRows) / float64(n)
		}
		if d < 1 {
			d = 1
		}
		if d > float64(totalRows) {
			d = float64(totalRows)
		}
		out[p-1] = 1 / d
	}
	return out
}

// densitiesFromMetadata synthesizes prefix densities from per-column
// distinct counts assuming independence, capped by the row count.
func densitiesFromMetadata(t *catalog.Table, cols []string) []float64 {
	out := make([]float64, len(cols))
	distinct := 1.0
	for i, c := range cols {
		distinct *= float64(t.DistinctOf(c))
		if distinct > float64(t.Rows) {
			distinct = float64(t.Rows)
		}
		if distinct < 1 {
			distinct = 1
		}
		out[i] = 1 / distinct
	}
	return out
}

// Store holds the statistics present on one server, keyed by table and
// ordered column list, with fast lookups by leading column and by
// unordered prefix set. A Store is safe for concurrent use: several tuning
// sessions can share one server, creating statistics while others'
// optimizations read them.
type Store struct {
	mu    sync.RWMutex
	stats map[string]*Statistic
	// hists indexes histograms by "table|leadingColumn".
	hists map[string]*Histogram
	// dens indexes prefix densities by "table|sortedColumnSet".
	dens map[string]float64
}

// NewStore creates an empty statistics store.
func NewStore() *Store {
	return &Store{
		stats: make(map[string]*Statistic),
		hists: make(map[string]*Histogram),
		dens:  make(map[string]float64),
	}
}

// Add registers a statistic (replacing any identical one).
func (s *Store) Add(st *Statistic) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats[st.Key()] = st
	if st.Hist != nil {
		s.hists[st.Table+"|"+st.Columns[0]] = st.Hist
	}
	for p := 1; p <= len(st.Columns) && p <= len(st.Densities); p++ {
		s.dens[st.Table+"|"+canonSet(st.Columns[:p])] = st.Densities[p-1]
	}
}

// Lookup returns the statistic with exactly this ordered column list, or nil.
func (s *Store) Lookup(table string, cols []string) *Statistic {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats[StatKey(table, cols)]
}

// Has reports whether an exact statistic exists.
func (s *Store) Has(table string, cols []string) bool {
	return s.Lookup(table, cols) != nil
}

// Len returns the number of statistics in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.stats)
}

// All returns the statistics in deterministic (key) order.
func (s *Store) All() []*Statistic {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.stats))
	for k := range s.stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Statistic, len(keys))
	for i, k := range keys {
		out[i] = s.stats[k]
	}
	return out
}

// HistogramFor returns a histogram on the column: any statistic whose
// leading column matches serves (SQL Server behaviour: histograms exist only
// on leading columns).
func (s *Store) HistogramFor(table, column string) *Histogram {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hists[strings.ToLower(table)+"|"+strings.ToLower(column)]
}

// DensityFor returns the density of the unordered column set if any
// statistic has exactly that set as a leading prefix (in any order) —
// density is order-insensitive. The second result reports availability.
func (s *Store) DensityFor(table string, cols []string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.dens[strings.ToLower(table)+"|"+canonSet(cols)]
	return d, ok
}

// CoversHistogram reports whether a histogram on the column exists.
func (s *Store) CoversHistogram(table, column string) bool {
	return s.HistogramFor(table, column) != nil
}

// Clone returns a copy of the store sharing the (immutable) statistics.
func (s *Store) Clone() *Store {
	out := NewStore()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.stats {
		out.Add(v)
	}
	return out
}

func canonSet(cols []string) string {
	lc := make([]string, len(cols))
	for i, c := range cols {
		lc[i] = strings.ToLower(c)
	}
	sort.Strings(lc)
	return strings.Join(lc, ",")
}
