package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
)

func TestUniformHistogramSelectivity(t *testing.T) {
	h := NewUniformHistogram(0, 1000, 100000, 1000, 50)
	if got := h.SelLess(500); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("SelLess(500) = %g, want ~0.5", got)
	}
	if got := h.SelLess(0); got != 0 {
		t.Fatalf("SelLess(min) = %g", got)
	}
	if got := h.SelLess(2000); got != 1 {
		t.Fatalf("SelLess(beyond max) = %g", got)
	}
	if got := h.SelEq(500); math.Abs(got-0.001) > 0.0005 {
		t.Fatalf("SelEq = %g, want ~1/1000", got)
	}
	if got := h.SelRange(250, 750, true, true); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("SelRange = %g, want ~0.5", got)
	}
	if got := h.SelRange(math.Inf(-1), 250, false, false); math.Abs(got-0.25) > 0.05 {
		t.Fatalf("open range = %g, want ~0.25", got)
	}
}

func TestHistogramFromValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.NormFloat64()*100 + 500 // clustered around 500
	}
	h := NewHistogramFromValues(vals, 1_000_000, 64)
	if math.Abs(h.Rows()-1_000_000) > 1 {
		t.Fatalf("mass = %g", h.Rows())
	}
	// Median of the normal is its mean.
	if got := h.SelLess(500); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("SelLess(median) = %g, want ~0.5", got)
	}
	// Mass within one sigma should be ~0.68.
	if got := h.SelRange(400, 600, true, true); math.Abs(got-0.68) > 0.08 {
		t.Fatalf("one-sigma mass = %g", got)
	}
}

func TestHistogramMassInvariantProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = float64(i)
			}
		}
		h := NewHistogramFromValues(raw, int64(len(raw))*10, 16)
		var mass float64
		lastHi := math.Inf(-1)
		for _, b := range h.Buckets {
			if b.Hi < lastHi {
				return false // buckets must be ordered
			}
			lastHi = b.Hi
			mass += b.Rows
		}
		if math.Abs(mass-h.TotalRows) > 1e-6*h.TotalRows+1e-9 {
			return false
		}
		// SelLess is monotone.
		lo, hi := h.Min, h.Max()
		prev := -1.0
		for i := 0; i <= 10; i++ {
			v := lo + (hi-lo)*float64(i)/10
			s := h.SelLess(v)
			if s < prev-1e-9 || s < 0 || s > 1 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func testCatalog() *catalog.Catalog {
	c := catalog.New()
	d := catalog.NewDatabase("db")
	d.AddTable(catalog.NewTable("db", "t", 200000,
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 50000, Min: 0, Max: 49999},
		&catalog.Column{Name: "b", Type: catalog.TypeInt, Width: 8, Distinct: 100, Min: 0, Max: 99},
		&catalog.Column{Name: "c", Type: catalog.TypeInt, Width: 8, Distinct: 10, Min: 0, Max: 9},
	))
	c.AddDatabase(d)
	return c
}

func TestBuildFromMetadata(t *testing.T) {
	cat := testCatalog()
	st, err := Build(cat, "t", []string{"A", "B"}, nil, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Key() != "t(a,b)" {
		t.Fatalf("key = %q", st.Key())
	}
	if len(st.Densities) != 2 {
		t.Fatalf("densities = %v", st.Densities)
	}
	if math.Abs(st.PrefixDensity(1)-1.0/50000) > 1e-9 {
		t.Fatalf("density(a) = %g", st.PrefixDensity(1))
	}
	// (a,b) saturates at row count: 50000*100 > 200000.
	if math.Abs(st.PrefixDensity(2)-1.0/200000) > 1e-12 {
		t.Fatalf("density(a,b) = %g", st.PrefixDensity(2))
	}
	if st.SampledPages <= 0 {
		t.Fatal("creation must charge sampling I/O")
	}
	if _, err := Build(cat, "t", []string{"zz"}, nil, BuildOptions{}); err == nil {
		t.Fatal("unknown column must fail")
	}
	if _, err := Build(cat, "nope", []string{"a"}, nil, BuildOptions{}); err == nil {
		t.Fatal("unknown table must fail")
	}
	if _, err := Build(cat, "t", nil, nil, BuildOptions{}); err == nil {
		t.Fatal("empty column list must fail")
	}
}

type fakeSampler struct{ rows [][]float64 }

func (f *fakeSampler) SampleColumn(table, column string, n int) []float64 {
	var out []float64
	for _, r := range f.rows {
		out = append(out, r[0])
	}
	return out
}

func (f *fakeSampler) SampleRows(table string, columns []string, n int) [][]float64 {
	out := make([][]float64, 0, len(f.rows))
	for _, r := range f.rows {
		out = append(out, r[:len(columns)])
	}
	return out
}

func TestBuildFromSampler(t *testing.T) {
	cat := testCatalog()
	// All sampled rows share b-value → density of (a,b) dominated by a.
	s := &fakeSampler{}
	for i := 0; i < 1000; i++ {
		s.rows = append(s.rows, []float64{float64(i % 10), 5})
	}
	st, err := Build(cat, "t", []string{"a", "b"}, s, BuildOptions{SampleRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// 10 distinct leading values in sample, not scaled (saturated sample).
	if d := st.PrefixDensity(1); math.Abs(d-0.1) > 0.01 {
		t.Fatalf("density(a) from sample = %g, want ~0.1", d)
	}
	if d := st.PrefixDensity(2); math.Abs(d-0.1) > 0.01 {
		t.Fatalf("density(a,b) from sample = %g, want ~0.1", d)
	}
	if st.Hist == nil || st.Hist.Rows() != 200000 {
		t.Fatalf("hist = %v", st.Hist)
	}
}

func TestStoreLookups(t *testing.T) {
	cat := testCatalog()
	store := NewStore()
	ab, _ := Build(cat, "t", []string{"a", "b"}, nil, BuildOptions{})
	c, _ := Build(cat, "t", []string{"c"}, nil, BuildOptions{})
	store.Add(ab)
	store.Add(c)

	if !store.Has("T", []string{"A", "B"}) {
		t.Fatal("exact lookup failed")
	}
	if store.Has("t", []string{"b", "a"}) {
		t.Fatal("order matters for exact lookup")
	}
	if store.HistogramFor("t", "a") == nil {
		t.Fatal("histogram on leading column should be found")
	}
	if store.HistogramFor("t", "b") != nil {
		t.Fatal("no histogram exists on a non-leading column")
	}
	if _, ok := store.DensityFor("t", []string{"b", "a"}); !ok {
		t.Fatal("density is order-insensitive: (b,a) should be served by stat (a,b)")
	}
	if _, ok := store.DensityFor("t", []string{"b"}); ok {
		t.Fatal("(b) alone is not a leading prefix of (a,b)")
	}
	if n := len(store.All()); n != 2 {
		t.Fatalf("All = %d", n)
	}
	cl := store.Clone()
	cl.Add(mustBuild(t, cat, "t", "b"))
	if store.Len() != 2 || cl.Len() != 3 {
		t.Fatal("clone should be independent")
	}
}

func mustBuild(t *testing.T, cat *catalog.Catalog, table string, cols ...string) *Statistic {
	t.Helper()
	st, err := Build(cat, table, cols, nil, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestReducePaperExample3(t *testing.T) {
	// Paper §5.2 Example 3: indexes on (A), (B), (A,B), (B,A), (A,B,C).
	// Creating statistics on (A,B,C) and one B-leading statistic contains
	// the same information as all five.
	reqs := []Request{
		{Table: "t", Columns: []string{"a"}},
		{Table: "t", Columns: []string{"b"}},
		{Table: "t", Columns: []string{"a", "b"}},
		{Table: "t", Columns: []string{"b", "a"}},
		{Table: "t", Columns: []string{"a", "b", "c"}},
	}
	red := Reduce(reqs)
	if len(red) != 2 {
		t.Fatalf("Reduce → %d stats, want 2: %v", len(red), red)
	}
	if !Covers(red, reqs) {
		t.Fatal("reduced set must cover all histogram and density info")
	}
	hasABC := false
	hasBLead := false
	for _, r := range red {
		if r.Key() == "t(a,b,c)" {
			hasABC = true
		}
		if r.Columns[0] == "b" {
			hasBLead = true
		}
	}
	if !hasABC || !hasBLead {
		t.Fatalf("expected (a,b,c) plus a b-leading stat, got %v", red)
	}
}

func TestReduceNoOpAndDedup(t *testing.T) {
	if got := Reduce(nil); len(got) != 0 {
		t.Fatal("empty input")
	}
	reqs := []Request{
		{Table: "t", Columns: []string{"A"}},
		{Table: "t", Columns: []string{"a"}},
	}
	if got := Reduce(reqs); len(got) != 1 {
		t.Fatalf("dedup failed: %v", got)
	}
	// Disjoint stats are all kept.
	reqs = []Request{
		{Table: "t", Columns: []string{"a"}},
		{Table: "t", Columns: []string{"b"}},
		{Table: "u", Columns: []string{"a"}},
	}
	if got := Reduce(reqs); len(got) != 3 {
		t.Fatalf("disjoint reduce: %v", got)
	}
}

func TestReduceCoversProperty(t *testing.T) {
	cols := []string{"a", "b", "c", "d", "e"}
	f := func(picks []uint8) bool {
		var reqs []Request
		for _, p := range picks {
			// Derive an ordered column list from the bits of p.
			n := int(p)%3 + 1
			var cl []string
			for i := 0; i < n; i++ {
				cl = append(cl, cols[(int(p)+i*2)%len(cols)])
			}
			// Deduplicate columns inside the request.
			seen := map[string]bool{}
			var uniq []string
			for _, c := range cl {
				if !seen[c] {
					seen[c] = true
					uniq = append(uniq, c)
				}
			}
			reqs = append(reqs, Request{Table: "t", Columns: uniq})
		}
		red := Reduce(reqs)
		if !Covers(red, reqs) {
			return false
		}
		return len(red) <= len(reqs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSavesOnPrefixHeavySets(t *testing.T) {
	// Candidate sets from real tuning share many prefixes; the reduction
	// should then be substantial (the paper reports 55% on TPC-H).
	var reqs []Request
	base := []string{"a", "b", "c", "d"}
	for i := range base {
		reqs = append(reqs, Request{Table: "t", Columns: base[:i+1]})
	}
	red := Reduce(reqs)
	if len(red) != 1 {
		t.Fatalf("prefix chain should reduce to 1 stat, got %v", red)
	}
	if red[0].Key() != "t(a,b,c,d)" {
		t.Fatalf("should keep the widest: %v", red)
	}
}
