// Package testsrv implements tuning in the production/test server scenario
// of paper §5.3: the test server imports only metadata (Step 1), tuning's
// what-if optimizations all run on the test server under the production
// server's simulated hardware parameters (Step 2), and the only load imposed
// on production is the creation of statistics the optimizer turns out to
// need, which are imported on demand. The recommendation is then applied to
// production (Step 3).
package testsrv

import (
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/stats"
	"repro/internal/whatif"
)

// Session pairs a production server with a test server and satisfies
// core.Tuner, routing what-if calls to the test server and statistics
// creation to production (followed by import). A Session may be shared by
// concurrent tuning sessions: statistics imports are serialized so the
// production server is sampled once per statistic.
type Session struct {
	Prod *whatif.Server
	Test *whatif.Server

	statsMu sync.Mutex

	// faults, when attached via SetFaults, injects failures into the
	// statistics import path (site "import") — the scenario-specific
	// failure mode this package adds over a single server. Atomic so a
	// late attach never races with in-flight imports.
	faults atomic.Pointer[fault.Injector]
}

// NewSession imports the production server's metadata into a fresh test
// server (charging production the metadata-scripting cost) and returns the
// tuning session.
func NewSession(prod *whatif.Server) *Session {
	return &Session{Prod: prod, Test: whatif.NewTestServer(prod.Name+"-test", prod)}
}

// SetMetrics attaches a registry to both halves of the session: the test
// server's series record the what-if load, the production server's series
// the sampling I/O of statistics creation (the two sides of Figure 3).
func (s *Session) SetMetrics(reg *obs.Registry) {
	s.Test.SetMetrics(reg)
	s.Prod.SetMetrics(reg)
}

// SetFaults attaches a fault injector to the session's import path (site
// "import") and to both servers (sites "whatif" and "stats"), so a single
// spec exercises every backend failure mode of the production/test
// scenario. Pass nil to detach.
func (s *Session) SetFaults(in *fault.Injector) {
	s.faults.Store(in)
	s.Test.SetFaults(in)
	s.Prod.SetFaults(in)
}

// Catalog returns the test server's (imported) catalog.
func (s *Session) Catalog() *catalog.Catalog { return s.Test.Cat }

// WhatIfCost runs the what-if optimization on the test server.
func (s *Session) WhatIfCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, error) {
	return s.Test.WhatIfCost(stmt, cfg)
}

// WhatIfAlternativesCost runs the what-if optimization on the test server,
// returning the plan skeleton too (core.AlternativesTuner), so cost
// derivation works identically in the production/test scenario.
func (s *Session) WhatIfAlternativesCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, *optimizer.Alternatives, error) {
	return s.Test.WhatIfAlternativesCost(stmt, cfg)
}

// WhatIfCallCount reports test-server what-if calls (production receives
// none in this scenario).
func (s *Session) WhatIfCallCount() int64 { return s.Test.WhatIfCallCount() }

// EnsureStatistics makes the needed statistics available on the test
// server: missing ones are created on the production server (the sampling
// I/O is the production overhead) and imported. Reduction (§5.2) applies
// before anything touches production.
func (s *Session) EnsureStatistics(reqs []stats.Request, reduce bool) (int, error) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	var missing []stats.Request
	for _, r := range reqs {
		if reduce {
			if !stats.Satisfied(s.Test.Stats, r) {
				missing = append(missing, r)
			}
		} else if !s.Test.Stats.Has(r.Table, r.Columns) {
			missing = append(missing, r)
		}
	}
	if reduce {
		missing = stats.Reduce(missing)
	}
	created := 0
	for _, r := range missing {
		// Imports already performed stay on the test server, so a retried
		// EnsureStatistics call after an injected failure resumes with the
		// remaining statistics — the loop is idempotent.
		if err := s.faults.Load().Inject(fault.SiteImport); err != nil {
			return created, err
		}
		if err := s.Test.ImportStatistic(s.Prod, r.Table, r.Columns); err != nil {
			return created, err
		}
		created++
	}
	return created, nil
}

// ProductionOverhead reports the total simulated duration of statements the
// tuning session submitted to the production server — the quantity Figure 3
// compares against tuning directly on production.
func (s *Session) ProductionOverhead() float64 { return s.Prod.Acct().Overhead }
