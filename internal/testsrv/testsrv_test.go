package testsrv

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/whatif"
	"repro/internal/workload"
)

func prodServer(tb testing.TB) *whatif.Server {
	tb.Helper()
	cat := catalog.New()
	db := catalog.NewDatabase("db")
	db.AddTable(catalog.NewTable("db", "t", 0,
		&catalog.Column{Name: "id", Type: catalog.TypeInt, Width: 8, Distinct: 50000, Min: 0, Max: 49999},
		&catalog.Column{Name: "x", Type: catalog.TypeInt, Width: 8, Distinct: 2000, Min: 0, Max: 1999},
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 50, Min: 0, Max: 49},
		&catalog.Column{Name: "pad", Type: catalog.TypeString, Width: 60, Distinct: 50000, Min: 0, Max: 49999},
	))
	cat.AddDatabase(db)
	data := engine.NewDatabase(cat)
	var rows [][]engine.Value
	for i := 0; i < 50000; i++ {
		rows = append(rows, []engine.Value{
			engine.Num(float64(i)), engine.Num(float64((i * 17) % 2000)),
			engine.Num(float64(i % 50)), engine.Str(fmt.Sprintf("p%06d", i)),
		})
	}
	if err := data.Load("t", rows); err != nil {
		tb.Fatal(err)
	}
	s := whatif.NewServer("prod", cat, optimizer.DefaultHardware())
	s.AttachData(data)
	return s
}

var _ core.Tuner = (*Session)(nil)

func testWorkload() *workload.Workload {
	var sqls []string
	for i := 0; i < 40; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT id FROM t WHERE x = %d", i*11))
		sqls = append(sqls, fmt.Sprintf("SELECT a, COUNT(*) FROM t WHERE x < %d GROUP BY a", 50+i))
	}
	return workload.MustNew(sqls...)
}

func TestSessionReducesProductionOverhead(t *testing.T) {
	w := testWorkload()

	// Tuning directly on production.
	direct := prodServer(t)
	recDirect, err := core.Tune(direct, w, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directOverhead := direct.Acct().Overhead
	if directOverhead <= 0 {
		t.Fatal("direct tuning must load production")
	}

	// Tuning through a test server.
	prod := prodServer(t)
	sess := NewSession(prod)
	recSess, err := core.Tune(sess, w, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sessOverhead := sess.ProductionOverhead()
	if sessOverhead >= directOverhead {
		t.Fatalf("test server must reduce production overhead: %.0f vs %.0f", sessOverhead, directOverhead)
	}
	reduction := 1 - sessOverhead/directOverhead
	if reduction < 0.3 {
		t.Fatalf("overhead reduction too small: %.0f%%", 100*reduction)
	}
	if prod.Acct().WhatIfCalls != 0 {
		t.Fatal("no what-if call may reach production")
	}

	// Same recommendation quality: metadata + imported statistics + simulated
	// hardware reproduce the optimizer's view of production.
	if d := recSess.Improvement - recDirect.Improvement; d > 0.02 || d < -0.02 {
		t.Fatalf("test-server tuning should match direct tuning: %.3f vs %.3f",
			recSess.Improvement, recDirect.Improvement)
	}
}

func TestSessionStatImportOnDemand(t *testing.T) {
	prod := prodServer(t)
	sess := NewSession(prod)
	if created, err := sess.EnsureStatistics(nil, true); err != nil || created != 0 {
		t.Fatalf("empty request: created=%d err=%v", created, err)
	}
	overheadBefore := prod.Acct().Overhead
	reqs := []stats.Request{
		{Table: "t", Columns: []string{"x"}},
		{Table: "t", Columns: []string{"x", "a"}},
	}
	created, err := sess.EnsureStatistics(reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	// Reduction folds (x) into (x,a): one create suffices.
	if created != 1 {
		t.Fatalf("created = %d, want 1 after reduction", created)
	}
	if !sess.Test.Stats.Has("t", []string{"x", "a"}) {
		t.Fatal("statistic not imported to the test server")
	}
	if prod.Acct().Overhead <= overheadBefore {
		t.Fatal("statistics creation must charge production")
	}
	// Re-ensuring is free.
	overheadBefore = prod.Acct().Overhead
	if created, err := sess.EnsureStatistics(reqs, true); err != nil || created != 0 {
		t.Fatalf("re-ensure: created=%d err=%v", created, err)
	}
	if prod.Acct().Overhead != overheadBefore {
		t.Fatal("re-ensuring must not touch production")
	}
}
