package whatif

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
	"repro/internal/stats"
)

// TestConcurrentStatsSingleFlight hammers one production server from many
// goroutines issuing overlapping EnsureStatistics requests interleaved with
// WhatIfCost calls — the access pattern of a parallel tuning session (and
// of several concurrent sessions sharing a backend). Statistics creation
// must be single-flight: each distinct statistic is built and charged
// exactly once, and the per-caller created counts sum to the server total.
// Run under -race this also proves the shared read paths (stats store,
// catalog, optimizer) tolerate concurrent what-if traffic.
func TestConcurrentStatsSingleFlight(t *testing.T) {
	s := prodServer(t)
	stmt, err := sqlparser.Parse("SELECT a FROM t WHERE a = 5 AND b = 2")
	if err != nil {
		t.Fatal(err)
	}

	// Overlapping column sets: (a), (b), (a,b), (b,a) — reduction and
	// prefix-subsumption make several of these the "same" statistic, which
	// is exactly the duplication single-flight must absorb.
	reqSets := [][]stats.Request{
		{{Table: "t", Columns: []string{"a"}}},
		{{Table: "t", Columns: []string{"b"}}},
		{{Table: "t", Columns: []string{"a", "b"}}},
		{{Table: "t", Columns: []string{"a"}}, {Table: "t", Columns: []string{"a", "b"}}},
		{{Table: "t", Columns: []string{"b"}}, {Table: "t", Columns: []string{"b", "a"}}},
	}

	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("t", "a", "b"))

	const goroutines = 24
	const rounds = 8
	createdByCaller := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n, err := s.EnsureStatistics(reqSets[(g+r)%len(reqSets)], true)
				if err != nil {
					t.Error(err)
					return
				}
				createdByCaller[g] += n
				if _, _, err := s.WhatIfCost(stmt, cfg); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	sum := 0
	for _, n := range createdByCaller {
		sum += n
	}
	acct := s.Acct()
	if int64(sum) != acct.StatsCreated {
		t.Fatalf("callers counted %d statistics created, server charged %d", sum, acct.StatsCreated)
	}
	if got := s.Stats.Len(); int64(got) != acct.StatsCreated {
		t.Fatalf("store holds %d statistics, server charged %d builds (duplicate build slipped through)", got, acct.StatsCreated)
	}
	if acct.StatsCreated == 0 {
		t.Fatal("no statistics were created")
	}
	// Every request set must now be satisfied without further creation.
	for _, reqs := range reqSets {
		n, err := s.EnsureStatistics(reqs, true)
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("request set still created %d statistics after the stampede", n)
		}
	}
	if acct.WhatIfCalls != goroutines*rounds {
		t.Fatalf("what-if calls = %d, want %d", acct.WhatIfCalls, goroutines*rounds)
	}
}

// TestConcurrentCreateStatisticExactCharge races CreateStatistic directly on
// one key: exactly one build may be charged.
func TestConcurrentCreateStatisticExactCharge(t *testing.T) {
	s := prodServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.CreateStatistic("t", []string{"a"}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := s.Acct().StatsCreated; got != 1 {
		t.Fatalf("statsCreated = %d, want 1", got)
	}
}
