// Package whatif provides the what-if analysis interfaces of [9] that the
// tuning advisor is built on: given a statement and a hypothetical
// configuration, obtain the optimizer-estimated cost as if the configuration
// were materialized — without materializing anything.
//
// A Server bundles the catalog, statistics, hardware model, and (on a
// production server) the actual data. Every what-if optimizer call and every
// statistics creation is charged to the server that performs it, which is
// what makes the production/test experiment (§5.3, Figure 3) measurable.
//
// A Server is safe for concurrent use by multiple tuning sessions and by
// the pool workers of a parallel session: the accounting counters are
// atomic, statistics creation is single-flight per statistic (concurrent
// requests for the same statistic coalesce onto one build; distinct
// statistics build concurrently), and the optimizer itself carries no
// per-call mutable state.
package whatif

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/stats"
)

// WhatIfCallCost is the simulated overhead (in sequential-page units) one
// what-if optimization imposes on the server that runs it. Optimizing a
// query is CPU over metadata — roughly the work of reading a hundred pages —
// and tuning issues thousands of such calls, which is why offloading them to
// a test server pays off (§5.3).
const WhatIfCallCost = 100.0

// MetadataImportCost is the (small) overhead of scripting out metadata —
// a catalog-only operation independent of data size (§5.3 Step 1).
const MetadataImportCost = 50.0

// Accounting is a consistent snapshot of the load tuning imposed on a
// server, obtained from Server.Acct.
type Accounting struct {
	WhatIfCalls  int64
	StatsCreated int64
	// Overhead is the total simulated duration of statements submitted to
	// this server, in sequential-page units.
	Overhead float64
}

// Server is one database server.
type Server struct {
	Name  string
	Cat   *catalog.Catalog
	Stats *stats.Store
	HW    optimizer.Hardware
	// Data is the actual stored data; nil on a test server, which holds
	// only metadata and imported statistics.
	Data *engine.Database

	// Accounting counters; atomic so concurrent tuning sessions sharing
	// this server never lose an increment.
	whatIfCalls  atomic.Int64
	statsCreated atomic.Int64
	overheadBits atomic.Uint64 // float64 bits of the Overhead counter

	// statsMu guards inflight, the single-flight table for statistics
	// creation: per statistic key, the first caller builds (outside the
	// lock, so distinct statistics build concurrently) while later callers
	// wait on the flight's done channel. Each statistic is built and
	// charged exactly once however many sessions or pool workers race
	// for it.
	statsMu  sync.Mutex
	inflight map[string]*statFlight

	// metrics, when attached via SetMetrics, receives the server's what-if
	// call latency and statistics-creation observations. Atomic so a late
	// SetMetrics never races with in-flight calls.
	metrics atomic.Pointer[serverMetrics]

	// faults, when attached via SetFaults, injects failures into every
	// what-if call (site "whatif") and statistics build (site "stats") —
	// the chaos-testing hook the robustness layer is exercised with.
	// Atomic for the same late-attach reason as metrics.
	faults atomic.Pointer[fault.Injector]

	opt *optimizer.Optimizer
}

// serverMetrics caches the registry series the hot path observes into, so a
// what-if call costs two histogram observations and no registry lookups.
type serverMetrics struct {
	latency      *obs.Histogram
	structsIdx   *obs.Histogram
	structsView  *obs.Histogram
	structsPart  *obs.Histogram
	statsCreated *obs.Counter
	statsPages   *obs.Counter
}

// SetMetrics attaches a metrics registry: every subsequent what-if call
// feeds a latency histogram and per-structure-kind configuration-size
// histograms, and statistics creation feeds counters. All series carry a
// server label, so several servers (production + test) can share one
// registry. The what-if latency histogram's _count equals WhatIfCallCount —
// the paper's tuning-cost metric — which is what lets a scrape cross-check
// the advisor's exact accounting.
func (s *Server) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics.Store(nil)
		return
	}
	m := &serverMetrics{
		latency: reg.Histogram("dta_whatif_call_duration_seconds",
			"Latency of what-if optimizer calls.", obs.LatencyBuckets, "server", s.Name),
		structsIdx: reg.Histogram("dta_whatif_config_structures",
			"Structures per what-if configuration, by kind.", obs.CountBuckets, "server", s.Name, "kind", "index"),
		structsView: reg.Histogram("dta_whatif_config_structures",
			"Structures per what-if configuration, by kind.", obs.CountBuckets, "server", s.Name, "kind", "view"),
		structsPart: reg.Histogram("dta_whatif_config_structures",
			"Structures per what-if configuration, by kind.", obs.CountBuckets, "server", s.Name, "kind", "partitioning"),
		statsCreated: reg.Counter("dta_stats_created_total",
			"Statistics built from data samples.", "server", s.Name),
		statsPages: reg.Counter("dta_stats_sampled_pages_total",
			"Pages sampled building statistics.", "server", s.Name),
	}
	s.metrics.Store(m)
}

// SetFaults attaches (or, with nil, detaches) a fault injector consulted on
// every what-if call and statistics build. The injected error, latency, or
// panic surfaces exactly where a real backend failure would, so the
// advisor's retry/breaker path is exercised end to end.
func (s *Server) SetFaults(in *fault.Injector) { s.faults.Store(in) }

// injectFault fires the server's injector at site (no-op when detached).
func (s *Server) injectFault(site string) error {
	return s.faults.Load().Inject(site)
}

// NewServer creates a server over the catalog with empty statistics.
func NewServer(name string, cat *catalog.Catalog, hw optimizer.Hardware) *Server {
	s := &Server{Name: name, Cat: cat, Stats: stats.NewStore(), HW: hw}
	s.opt = optimizer.New(cat, s.Stats, hw)
	return s
}

// AttachData associates actual data (making this a production server) and
// syncs catalog row counts.
func (s *Server) AttachData(db *engine.Database) {
	s.Data = db
	db.SyncRowCounts()
}

// Optimizer returns the server's optimizer (for direct plan inspection).
func (s *Server) Optimizer() *optimizer.Optimizer { return s.opt }

// Acct returns a snapshot of the server's accounting counters.
func (s *Server) Acct() Accounting {
	return Accounting{
		WhatIfCalls:  s.whatIfCalls.Load(),
		StatsCreated: s.statsCreated.Load(),
		Overhead:     math.Float64frombits(s.overheadBits.Load()),
	}
}

// addOverhead atomically adds simulated load to the server.
func (s *Server) addOverhead(d float64) {
	for {
		old := s.overheadBits.Load()
		if s.overheadBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// WhatIf optimizes the statement as if cfg were materialized, charging the
// call to this server.
func (s *Server) WhatIf(stmt sqlparser.Statement, cfg *catalog.Configuration) (*optimizer.Result, error) {
	s.whatIfCalls.Add(1)
	s.addOverhead(WhatIfCallCost)
	if err := s.injectFault(fault.SiteWhatIf); err != nil {
		// The failed call is still charged above: a real backend does the
		// accounting before the optimizer can fail, and retries must show up
		// in the server's load figures.
		return nil, err
	}
	m := s.metrics.Load()
	if m == nil {
		return s.opt.Optimize(stmt, cfg)
	}
	start := time.Now()
	res, err := s.opt.Optimize(stmt, cfg)
	m.latency.Observe(time.Since(start).Seconds())
	if cfg != nil {
		m.structsIdx.Observe(float64(len(cfg.Indexes)))
		m.structsView.Observe(float64(len(cfg.Views)))
		m.structsPart.Observe(float64(len(cfg.TableParts)))
	}
	return res, err
}

// Cost is WhatIf returning only the estimated cost.
func (s *Server) Cost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, error) {
	res, err := s.WhatIf(stmt, cfg)
	if err != nil {
		return 0, err
	}
	return res.Cost, nil
}

// HasStatistic reports whether the exact statistic exists on the server.
func (s *Server) HasStatistic(table string, cols []string) bool {
	return s.Stats.Has(table, cols)
}

// statFlight is one in-flight statistics build: done closes once st/err are
// final, and every caller that found the flight in the inflight table reads
// the result instead of building a duplicate.
type statFlight struct {
	done chan struct{}
	st   *stats.Statistic
	err  error
}

// CreateStatistic builds one statistic from the server's own data (sampling
// I/O charged to this server). It fails on a server without data — a test
// server must import statistics instead (§5.3).
func (s *Server) CreateStatistic(table string, cols []string) (*stats.Statistic, error) {
	st, _, err := s.createStatistic(table, cols)
	return st, err
}

// createStatistic is the single-flight core of CreateStatistic: built
// reports whether THIS call performed the build (false for an existing
// statistic and for a wait coalesced onto another caller's build), which is
// what keeps EnsureStatistics' created count exact under concurrency.
func (s *Server) createStatistic(table string, cols []string) (*stats.Statistic, bool, error) {
	key := stats.StatKey(table, cols)
	s.statsMu.Lock()
	if s.Stats.Has(table, cols) {
		st := s.Stats.Lookup(table, cols)
		s.statsMu.Unlock()
		return st, false, nil
	}
	if fl, ok := s.inflight[key]; ok {
		s.statsMu.Unlock()
		<-fl.done
		return fl.st, false, fl.err
	}
	fl := &statFlight{done: make(chan struct{})}
	if s.inflight == nil {
		s.inflight = map[string]*statFlight{}
	}
	s.inflight[key] = fl
	s.statsMu.Unlock()

	fl.st, fl.err = s.buildStatistic(table, cols)
	s.statsMu.Lock()
	delete(s.inflight, key)
	s.statsMu.Unlock()
	close(fl.done)
	return fl.st, fl.err == nil, fl.err
}

// buildStatistic samples, builds, stores, and charges one statistic. Called
// only by a flight leader, outside the statsMu lock.
func (s *Server) buildStatistic(table string, cols []string) (*stats.Statistic, error) {
	if s.Data == nil {
		return nil, fmt.Errorf("whatif: server %q holds no data; import statistics from the production server", s.Name)
	}
	if err := s.injectFault(fault.SiteStats); err != nil {
		return nil, err
	}
	st, err := stats.Build(s.Cat, table, cols, engine.NewSampler(s.Data), stats.BuildOptions{})
	if err != nil {
		return nil, err
	}
	s.Stats.Add(st)
	s.statsCreated.Add(1)
	s.addOverhead(float64(st.SampledPages))
	if m := s.metrics.Load(); m != nil {
		m.statsCreated.Inc()
		m.statsPages.Add(float64(st.SampledPages))
	}
	return st, nil
}

// EnsureStatistics creates the missing statistics among reqs on this server.
// With reduce set, the redundant ones are eliminated first (§5.2) — the
// H-List/D-List greedy cover — so fewer create-statistics statements run.
// It returns the number of statistics actually created.
func (s *Server) EnsureStatistics(reqs []stats.Request, reduce bool) (int, error) {
	var missing []stats.Request
	for _, r := range reqs {
		if reduce {
			if !stats.Satisfied(s.Stats, r) {
				missing = append(missing, r)
			}
		} else if !s.Stats.Has(r.Table, r.Columns) {
			missing = append(missing, r)
		}
	}
	if reduce {
		missing = stats.Reduce(missing)
	}
	created := 0
	for _, r := range missing {
		_, built, err := s.createStatistic(r.Table, r.Columns)
		if err != nil {
			return created, err
		}
		// Count only builds this call performed: when a concurrent session
		// built (or is building) the same statistic, it is charged there,
		// so per-session created counts stay exact and sum to the server's
		// statsCreated counter.
		if built {
			created++
		}
	}
	return created, nil
}

// ImportStatistic copies one statistic from another server (creating it
// there if necessary — that sampling cost lands on the source server, the
// only tuning overhead a test-server session imposes on production).
func (s *Server) ImportStatistic(from *Server, table string, cols []string) error {
	st := from.Stats.Lookup(table, cols)
	if st == nil {
		var err error
		st, err = from.CreateStatistic(table, cols)
		if err != nil {
			return err
		}
	}
	s.Stats.Add(st)
	return nil
}

// NewTestServer creates a test server from a production server per §5.3
// Step 1: metadata is imported (no data), statistics start empty, and the
// production server's hardware parameters are simulated so the optimizer
// produces the same plans it would produce on production.
func NewTestServer(name string, prod *Server) *Server {
	prod.addOverhead(MetadataImportCost)
	t := NewServer(name, prod.Cat.Clone(), prod.HW)
	return t
}

// ResetAccounting zeroes the server's accounting counters.
func (s *Server) ResetAccounting() {
	s.whatIfCalls.Store(0)
	s.statsCreated.Store(0)
	s.overheadBits.Store(0)
}

// Catalog returns the server's catalog (core.Tuner interface).
func (s *Server) Catalog() *catalog.Catalog { return s.Cat }

// WhatIfCost returns the estimated cost of stmt under cfg together with the
// structures the chosen plan uses (core.Tuner interface).
func (s *Server) WhatIfCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, error) {
	res, err := s.WhatIf(stmt, cfg)
	if err != nil {
		return 0, nil, err
	}
	return res.Cost, res.UsedStructures, nil
}

// WhatIfAlternativesCost is WhatIfCost returning, in addition, the plan
// skeleton of the optimized statement when one exists (SELECTs — flat
// components for single-scope queries, composed join skeletons for
// multi-scope ones; nil for DML). It is charged exactly like a single
// what-if call — same counter, same overhead, same fault site — because it
// performs one optimization and the skeleton falls out of work the optimizer
// already did.
func (s *Server) WhatIfAlternativesCost(stmt sqlparser.Statement, cfg *catalog.Configuration) (float64, []string, *optimizer.Alternatives, error) {
	s.whatIfCalls.Add(1)
	s.addOverhead(WhatIfCallCost)
	if err := s.injectFault(fault.SiteWhatIf); err != nil {
		// Charged above even on failure, matching WhatIf.
		return 0, nil, nil, err
	}
	m := s.metrics.Load()
	if m == nil {
		res, alts, err := s.opt.OptimizeAlternatives(stmt, cfg)
		if err != nil {
			return 0, nil, nil, err
		}
		return res.Cost, res.UsedStructures, alts, nil
	}
	start := time.Now()
	res, alts, err := s.opt.OptimizeAlternatives(stmt, cfg)
	m.latency.Observe(time.Since(start).Seconds())
	if cfg != nil {
		m.structsIdx.Observe(float64(len(cfg.Indexes)))
		m.structsView.Observe(float64(len(cfg.Views)))
		m.structsPart.Observe(float64(len(cfg.TableParts)))
	}
	if err != nil {
		return 0, nil, nil, err
	}
	return res.Cost, res.UsedStructures, alts, nil
}

// WhatIfCallCount reports the number of what-if calls issued so far
// (core.Tuner interface).
func (s *Server) WhatIfCallCount() int64 { return s.whatIfCalls.Load() }
