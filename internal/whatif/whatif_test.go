package whatif

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/sqlparser"
	"repro/internal/stats"
)

func prodServer(t *testing.T) *Server {
	t.Helper()
	cat := catalog.New()
	d := catalog.NewDatabase("db")
	d.AddTable(catalog.NewTable("db", "t", 0,
		&catalog.Column{Name: "a", Type: catalog.TypeInt, Width: 8, Distinct: 100, Min: 0, Max: 99},
		&catalog.Column{Name: "b", Type: catalog.TypeInt, Width: 8, Distinct: 10, Min: 0, Max: 9},
	))
	cat.AddDatabase(d)
	db := engine.NewDatabase(cat)
	var rows [][]engine.Value
	for i := 0; i < 2000; i++ {
		rows = append(rows, []engine.Value{engine.Num(float64(i % 100)), engine.Num(float64(i % 10))})
	}
	if err := db.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	s := NewServer("prod", cat, optimizer.DefaultHardware())
	s.AttachData(db)
	return s
}

func TestWhatIfChargesOverhead(t *testing.T) {
	s := prodServer(t)
	stmt := sqlparser.MustParse("SELECT a FROM t WHERE a = 5")
	cfg := catalog.NewConfiguration()
	cfg.AddIndex(catalog.NewIndex("t", "a"))

	res, err := s.WhatIf(stmt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Fatal("cost should be positive")
	}
	if s.Acct().WhatIfCalls != 1 || s.Acct().Overhead < WhatIfCallCost {
		t.Fatalf("accounting = %+v", s.Acct())
	}
}

func TestCreateStatisticFromData(t *testing.T) {
	s := prodServer(t)
	st, err := s.CreateStatistic("t", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hist == nil || len(st.Densities) != 2 {
		t.Fatalf("stat = %+v", st)
	}
	if s.Acct().StatsCreated != 1 || s.Acct().Overhead <= 0 {
		t.Fatalf("accounting = %+v", s.Acct())
	}
	// Idempotent.
	before := s.Acct()
	if _, err := s.CreateStatistic("t", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if s.Acct() != before {
		t.Fatal("re-creating an existing statistic must be free")
	}
}

func TestEnsureStatisticsReduces(t *testing.T) {
	s := prodServer(t)
	reqs := []stats.Request{
		{Table: "t", Columns: []string{"a"}},
		{Table: "t", Columns: []string{"a", "b"}},
		{Table: "t", Columns: []string{"b", "a"}},
		{Table: "t", Columns: []string{"b"}},
	}
	created, err := s.EnsureStatistics(reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	if created >= 4 {
		t.Fatalf("reduction should create fewer than 4 stats, created %d", created)
	}
	// The information is nevertheless complete: histograms on a and b.
	if s.Stats.HistogramFor("t", "a") == nil || s.Stats.HistogramFor("t", "b") == nil {
		t.Fatal("histograms missing after reduced creation")
	}
	if _, ok := s.Stats.DensityFor("t", []string{"a", "b"}); !ok {
		t.Fatal("density (a,b) missing after reduced creation")
	}
}

func TestTestServerFlow(t *testing.T) {
	prod := prodServer(t)
	test := NewTestServer("test", prod)

	if test.Data != nil {
		t.Fatal("test server must not hold data")
	}
	if test.Cat.ResolveTable("t") == nil {
		t.Fatal("metadata should be imported")
	}
	// Mutating the test catalog must not touch production.
	test.Cat.ResolveTable("t").Rows = 7
	if prod.Cat.ResolveTable("t").Rows == 7 {
		t.Fatal("catalog import must be a deep copy")
	}
	test.Cat.ResolveTable("t").Rows = prod.Cat.ResolveTable("t").Rows

	// Statistics creation on the test server fails — they must be imported.
	if _, err := test.CreateStatistic("t", []string{"a"}); err == nil {
		t.Fatal("test server cannot sample data it does not have")
	} else if !strings.Contains(err.Error(), "import") {
		t.Fatalf("unhelpful error: %v", err)
	}

	prodOverheadBefore := prod.Acct().Overhead
	if err := test.ImportStatistic(prod, "t", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if !test.Stats.Has("t", []string{"a"}) {
		t.Fatal("import failed")
	}
	if prod.Acct().Overhead <= prodOverheadBefore {
		t.Fatal("creating the statistic must charge the production server")
	}

	// What-if calls on the test server charge the test server only.
	prodCalls := prod.Acct().WhatIfCalls
	if _, err := test.WhatIf(sqlparser.MustParse("SELECT a FROM t WHERE a = 1"), nil); err != nil {
		t.Fatal(err)
	}
	if prod.Acct().WhatIfCalls != prodCalls {
		t.Fatal("test-server what-if must not touch production")
	}
	if test.Acct().WhatIfCalls != 1 {
		t.Fatalf("test accounting = %+v", test.Acct())
	}
}

func TestTestServerSimulatesProductionHardware(t *testing.T) {
	prod := prodServer(t)
	prod.HW = optimizer.Hardware{CPUs: 32, MemoryPages: 1 << 20, RandomFactor: 4}
	// Recreate optimizer with the new HW for the comparison server.
	prod = func() *Server {
		s := NewServer("prod", prod.Cat, prod.HW)
		s.Data = prod.Data
		return s
	}()
	test := NewTestServer("test", prod)
	if test.HW != prod.HW {
		t.Fatal("test server must simulate production hardware parameters")
	}
	stmt := sqlparser.MustParse("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a")
	cp, err := prod.Cost(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := test.Cost(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp != ct {
		t.Fatalf("same metadata + simulated hardware must reproduce plans/costs: %g vs %g", cp, ct)
	}
}
