package workload

import "fmt"

// Compressor is the online form of workload compression (paper §5.1): it
// maintains, per statement template, a bounded greedy k-center clustering of
// the events seen so far — at most MaxPerTemplate representative events plus
// per-constant-position normalization ranges — and folds every other event's
// weight and traced duration into its nearest representative as it arrives.
//
// Memory is O(templates × MaxPerTemplate) regardless of how many events are
// streamed through, which is what lets a multi-million-event profiler trace
// be ingested without ever materializing it (see StreamTrace). Batch
// Compress is implemented as a Compressor fed the workload in order, so for
// identical in-order input the two produce identical representatives by
// construction.
type Compressor struct {
	maxPer    int
	threshold float64

	bySig map[string]*templateCluster
	order []*templateCluster // first-seen template order

	events int64
	weight float64
}

// templateCluster is the bounded per-template clustering state: the chosen
// representatives with folded weights/durations, their constant vectors, and
// the running numeric range per constant position used to normalize
// distances into [0,1]. The ranges evolve as events arrive; distance
// computations always use the range observed so far, which keeps the
// algorithm deterministic for a given input order.
type templateCluster struct {
	reps []*Event
	vecs [][]lit

	lo, hi []float64 // per-position numeric range
	seen   []bool    // position has seen a numeric value
	scale  []float64 // hi - lo, maintained incrementally
}

// NewCompressor returns an empty online compressor; zero option fields take
// the Compress defaults (4 representatives per template, threshold 0.1).
func NewCompressor(opt CompressOptions) *Compressor {
	maxPer := opt.MaxPerTemplate
	if maxPer <= 0 {
		maxPer = 4
	}
	threshold := opt.Threshold
	if threshold <= 0 {
		threshold = 0.1
	}
	return &Compressor{maxPer: maxPer, threshold: threshold, bySig: map[string]*templateCluster{}}
}

// Add folds one event into the compressor. The event's weight and duration
// must be finite and non-negative (the same guard as Workload.Add — a NaN
// folded in here would poison every representative weight after it); a
// weight of zero counts as 1. The event itself is not retained: a new
// representative is a copy.
func (c *Compressor) Add(e *Event) error {
	if err := checkField("weight", e.Weight); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if err := checkField("duration", e.Duration); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	w := e.Weight
	if w == 0 {
		w = 1
	}
	sig := e.Signature()
	t := c.bySig[sig]
	if t == nil {
		t = &templateCluster{}
		c.bySig[sig] = t
		c.order = append(c.order, t)
	}
	vec := litVector(e.Stmt)
	t.extend(vec)

	// Nearest representative under the ranges observed so far.
	best, bestD := -1, 0.0
	for i, rv := range t.vecs {
		d := litDistance(vec, rv, t.scale)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	c.events++
	c.weight += w
	if best < 0 || (bestD > c.threshold && len(t.reps) < c.maxPer) {
		// Far from every representative and there is room: the event opens
		// its own cluster.
		cp := *e
		cp.Weight = w
		t.reps = append(t.reps, &cp)
		t.vecs = append(t.vecs, vec)
		return nil
	}
	// Fold weight and traced duration into the nearest representative; the
	// representative's duration stays the weighted mean of its cluster so
	// weight×duration totals survive compression.
	rep := t.reps[best]
	tw := rep.Weight + w
	if tw > 0 {
		rep.Duration = (rep.Duration*rep.Weight + e.Duration*w) / tw
	}
	rep.Weight = tw
	return nil
}

// extend grows the cluster's per-position range state to cover vec and
// updates the ranges with vec's numeric values.
func (t *templateCluster) extend(vec []lit) {
	for len(t.lo) < len(vec) {
		t.lo = append(t.lo, 0)
		t.hi = append(t.hi, 0)
		t.seen = append(t.seen, false)
		t.scale = append(t.scale, 0)
	}
	for p, l := range vec {
		if !l.isNum {
			continue
		}
		if !t.seen[p] {
			t.lo[p], t.hi[p], t.seen[p] = l.num, l.num, true
		} else {
			if l.num < t.lo[p] {
				t.lo[p] = l.num
			}
			if l.num > t.hi[p] {
				t.hi[p] = l.num
			}
		}
		t.scale[p] = t.hi[p] - t.lo[p]
	}
}

// Events returns the number of raw events absorbed so far.
func (c *Compressor) Events() int64 { return c.events }

// TotalWeight returns the summed weight absorbed so far; it equals the
// TotalWeight of the compressed workload.
func (c *Compressor) TotalWeight() float64 { return c.weight }

// Templates returns the number of distinct statement templates seen.
func (c *Compressor) Templates() int { return len(c.order) }

// Len returns the number of representatives currently held — the size of
// Workload() and the compressor's entire retained state, bounded by
// Templates() × MaxPerTemplate.
func (c *Compressor) Len() int {
	n := 0
	for _, t := range c.order {
		n += len(t.reps)
	}
	return n
}

// Ratio returns the compression ratio achieved so far (raw events per
// representative; 1 when nothing folded).
func (c *Compressor) Ratio() float64 {
	if n := c.Len(); n > 0 {
		return float64(c.events) / float64(n)
	}
	return 1
}

// TemplateWeights returns the total folded weight per statement template
// signature. Every event's weight lands in its template's total no matter
// which representative absorbed it, so the result depends only on the
// multiset of events streamed in, not their order (exactly so for the
// integral weights profiler traces carry; fractional weights agree up to
// float summation rounding) — the property the drift scorer's determinism
// rests on.
func (c *Compressor) TemplateWeights() map[string]float64 {
	out := make(map[string]float64, len(c.bySig))
	for sig, t := range c.bySig {
		var w float64
		for _, r := range t.reps {
			w += r.Weight
		}
		out[sig] = w
	}
	return out
}

// Workload returns the compressed workload: the representatives in template
// first-seen order, each carrying its cluster's folded weight and
// weighted-mean duration. The returned events are the compressor's own;
// streaming more events into the compressor after calling Workload mutates
// them, so finish ingesting first.
func (c *Compressor) Workload() *Workload {
	out := &Workload{Events: make([]*Event, 0, c.Len())}
	for _, t := range c.order {
		out.Events = append(out.Events, t.reps...)
	}
	return out
}
