package workload

import (
	"fmt"

	"repro/internal/sqlparser"
)

// CompressorState is the serializable form of a Compressor's entire retained
// state: the per-template representatives with their folded weights and
// durations, and the per-constant-position normalization ranges the distance
// computations depend on. RestoreCompressor rebuilds a compressor that is
// behaviourally identical to the snapshotted one — feeding both the same
// subsequent events produces the same representatives, weights, and template
// distribution — which is what lets a continuous tuning daemon survive a
// server restart without replaying its whole trace. Float fields round-trip
// exactly through encoding/json (shortest round-trip formatting), so a
// snapshot-restore cycle is lossless.
type CompressorState struct {
	// MaxPerTemplate and Threshold pin the clustering knobs the compressor
	// ran under; a restore under different knobs would diverge.
	MaxPerTemplate int     `json:"maxPerTemplate"`
	Threshold      float64 `json:"threshold"`
	// Events and Weight are the raw-event count and summed weight absorbed.
	Events int64   `json:"events"`
	Weight float64 `json:"weight"`
	// Templates holds the per-template clustering state in first-seen order.
	Templates []TemplateState `json:"templates,omitempty"`
}

// TemplateState is one template's snapshotted clustering state.
type TemplateState struct {
	// Reps are the representatives in creation order.
	Reps []RepState `json:"reps"`
	// Lo, Hi, and Seen are the per-constant-position numeric ranges observed
	// across every event of the template (not only the kept representatives).
	Lo   []float64 `json:"lo,omitempty"`
	Hi   []float64 `json:"hi,omitempty"`
	Seen []bool    `json:"seen,omitempty"`
}

// RepState is one representative event in serializable form; the parsed
// statement and constant vector are rebuilt from SQL on restore.
type RepState struct {
	SQL      string  `json:"sql"`
	Weight   float64 `json:"weight"`
	Duration float64 `json:"duration,omitempty"`
}

// State snapshots the compressor. The snapshot copies every mutable field,
// so streaming more events into the compressor afterwards does not alter it.
func (c *Compressor) State() *CompressorState {
	st := &CompressorState{
		MaxPerTemplate: c.maxPer,
		Threshold:      c.threshold,
		Events:         c.events,
		Weight:         c.weight,
	}
	for _, t := range c.order {
		ts := TemplateState{
			Lo:   append([]float64(nil), t.lo...),
			Hi:   append([]float64(nil), t.hi...),
			Seen: append([]bool(nil), t.seen...),
		}
		for _, r := range t.reps {
			ts.Reps = append(ts.Reps, RepState{SQL: r.SQL, Weight: r.Weight, Duration: r.Duration})
		}
		st.Templates = append(st.Templates, ts)
	}
	return st
}

// RestoreCompressor rebuilds a compressor from a snapshot. Representative
// statements are re-parsed and their constant vectors recomputed — both are
// pure functions of the SQL — while the range state is taken verbatim from
// the snapshot. A snapshot whose SQL no longer parses, or whose range arrays
// are inconsistent, is an error.
func RestoreCompressor(st *CompressorState) (*Compressor, error) {
	if st == nil {
		return nil, fmt.Errorf("workload: nil compressor state")
	}
	c := NewCompressor(CompressOptions{MaxPerTemplate: st.MaxPerTemplate, Threshold: st.Threshold})
	c.events = st.Events
	c.weight = st.Weight
	for i, ts := range st.Templates {
		if len(ts.Reps) == 0 {
			return nil, fmt.Errorf("workload: compressor state template %d has no representatives", i)
		}
		if len(ts.Lo) != len(ts.Hi) || len(ts.Lo) != len(ts.Seen) {
			return nil, fmt.Errorf("workload: compressor state template %d has inconsistent range arrays", i)
		}
		t := &templateCluster{
			lo:    append([]float64(nil), ts.Lo...),
			hi:    append([]float64(nil), ts.Hi...),
			seen:  append([]bool(nil), ts.Seen...),
			scale: make([]float64, len(ts.Lo)),
		}
		for p := range t.lo {
			t.scale[p] = t.hi[p] - t.lo[p]
		}
		var sig string
		for j, r := range ts.Reps {
			stmt, err := sqlparser.Parse(r.SQL)
			if err != nil {
				return nil, fmt.Errorf("workload: compressor state template %d rep %d: %w", i, j, err)
			}
			e := &Event{SQL: r.SQL, Stmt: stmt, Weight: r.Weight, Duration: r.Duration}
			if j == 0 {
				sig = e.Signature()
			} else if got := e.Signature(); got != sig {
				return nil, fmt.Errorf("workload: compressor state template %d mixes signatures %q and %q", i, sig, got)
			}
			vec := litVector(stmt)
			if len(vec) > len(t.lo) {
				return nil, fmt.Errorf("workload: compressor state template %d rep %d has %d constants but ranges cover %d", i, j, len(vec), len(t.lo))
			}
			t.reps = append(t.reps, e)
			t.vecs = append(t.vecs, vec)
		}
		if _, dup := c.bySig[sig]; dup {
			return nil, fmt.Errorf("workload: compressor state repeats template signature %q", sig)
		}
		c.bySig[sig] = t
		c.order = append(c.order, t)
	}
	return c, nil
}
