package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// stateEvents generates a deterministic event stream with several templates,
// varying constants (so clusters split), and mixed weights/durations.
func stateEvents(t *testing.T, n int, seed int64) []*Event {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{}
	for i := 0; i < n; i++ {
		var sql string
		switch i % 3 {
		case 0:
			sql = fmt.Sprintf("SELECT a FROM t WHERE a = %d", rng.Intn(1000))
		case 1:
			sql = fmt.Sprintf("SELECT b FROM t WHERE b BETWEEN %d AND %d", rng.Intn(100), 100+rng.Intn(100))
		default:
			sql = fmt.Sprintf("SELECT a, b FROM t WHERE a = %d AND b = %d", rng.Intn(50), rng.Intn(50))
		}
		if err := w.Add(sql, float64(1+rng.Intn(4))); err != nil {
			t.Fatal(err)
		}
		w.Events[len(w.Events)-1].Duration = float64(rng.Intn(100))
	}
	return w.Events
}

// TestCompressorStateRoundTrip snapshots a compressor mid-stream, restores
// it through a JSON round trip, streams the identical remaining events into
// both, and requires identical representatives, weights, and template
// distributions — the invariant daemon restart-resume depends on.
func TestCompressorStateRoundTrip(t *testing.T) {
	events := stateEvents(t, 400, 3)
	split := 250

	orig := NewCompressor(CompressOptions{})
	for _, e := range events[:split] {
		if err := orig.Add(e); err != nil {
			t.Fatal(err)
		}
	}

	data, err := json.Marshal(orig.State())
	if err != nil {
		t.Fatal(err)
	}
	var st CompressorState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCompressor(&st)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []*Compressor{orig, restored} {
		for _, e := range events[split:] {
			if err := c.Add(e); err != nil {
				t.Fatal(err)
			}
		}
	}

	if orig.Events() != restored.Events() || orig.TotalWeight() != restored.TotalWeight() {
		t.Fatalf("counters diverged: events %d vs %d, weight %v vs %v",
			orig.Events(), restored.Events(), orig.TotalWeight(), restored.TotalWeight())
	}
	if orig.Len() != restored.Len() || orig.Templates() != restored.Templates() {
		t.Fatalf("retained state diverged: %d/%d reps, %d/%d templates",
			orig.Len(), restored.Len(), orig.Templates(), restored.Templates())
	}
	if !reflect.DeepEqual(orig.TemplateWeights(), restored.TemplateWeights()) {
		t.Fatalf("template weights diverged:\n%v\nvs\n%v", orig.TemplateWeights(), restored.TemplateWeights())
	}
	ow, rw := orig.Workload(), restored.Workload()
	for i := range ow.Events {
		a, b := ow.Events[i], rw.Events[i]
		if a.SQL != b.SQL || a.Weight != b.Weight || a.Duration != b.Duration {
			t.Fatalf("representative %d diverged: %q w=%v d=%v vs %q w=%v d=%v",
				i, a.SQL, a.Weight, a.Duration, b.SQL, b.Weight, b.Duration)
		}
	}
	// And the snapshots of the two continued compressors agree too.
	oState, _ := json.Marshal(orig.State())
	rState, _ := json.Marshal(restored.State())
	if string(oState) != string(rState) {
		t.Fatalf("continued snapshots diverged:\n%s\nvs\n%s", oState, rState)
	}
}

func TestRestoreCompressorRejectsBadState(t *testing.T) {
	if _, err := RestoreCompressor(nil); err == nil {
		t.Fatal("nil state accepted")
	}
	bad := &CompressorState{Templates: []TemplateState{{}}}
	if _, err := RestoreCompressor(bad); err == nil {
		t.Fatal("template without representatives accepted")
	}
	bad = &CompressorState{Templates: []TemplateState{{
		Reps: []RepState{{SQL: "not sql at all ((", Weight: 1}},
	}}}
	if _, err := RestoreCompressor(bad); err == nil {
		t.Fatal("unparseable representative accepted")
	}
	bad = &CompressorState{Templates: []TemplateState{{
		Reps: []RepState{{SQL: "SELECT a FROM t WHERE a = 1", Weight: 1}},
		Lo:   []float64{0}, Hi: []float64{0, 1}, Seen: []bool{true},
	}}}
	if _, err := RestoreCompressor(bad); err == nil {
		t.Fatal("inconsistent range arrays accepted")
	}
	bad = &CompressorState{Templates: []TemplateState{
		{Reps: []RepState{{SQL: "SELECT a FROM t WHERE a = 1", Weight: 1}}, Lo: []float64{1}, Hi: []float64{1}, Seen: []bool{true}},
		{Reps: []RepState{{SQL: "SELECT a FROM t WHERE a = 2", Weight: 1}}, Lo: []float64{2}, Hi: []float64{2}, Seen: []bool{true}},
	}}
	if _, err := RestoreCompressor(bad); err == nil {
		t.Fatal("duplicate template signature accepted")
	}
}
