package workload

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqlparser"
)

// randomWorkload builds a templated workload with weights, durations, and a
// mix of numeric and string constants — the shape compression cares about.
func randomWorkload(rng *rand.Rand, events int) *Workload {
	w := &Workload{}
	for i := 0; i < events; i++ {
		var sql string
		switch rng.Intn(4) {
		case 0:
			sql = fmt.Sprintf("SELECT a FROM t WHERE x = %d", rng.Intn(5000))
		case 1:
			sql = fmt.Sprintf("SELECT b, SUM(c) FROM t WHERE y < %d GROUP BY b", rng.Intn(800))
		case 2:
			sql = fmt.Sprintf("UPDATE t SET c = %d WHERE id = %d", rng.Intn(9), rng.Intn(10000))
		default:
			sql = fmt.Sprintf("SELECT a FROM t WHERE s = '%c' AND x = %d", 'a'+rune(rng.Intn(6)), rng.Intn(100))
		}
		if err := w.Add(sql, float64(rng.Intn(10)+1)); err != nil {
			panic(err)
		}
		w.Events[len(w.Events)-1].Duration = float64(rng.Intn(50))
	}
	return w
}

func TestCompressorMatchesBatchCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		w := randomWorkload(rng, 50+rng.Intn(400))
		opt := CompressOptions{MaxPerTemplate: 1 + rng.Intn(5), Threshold: []float64{0, 0.05, 0.2}[rng.Intn(3)]}

		batch := Compress(w, opt)

		c := NewCompressor(opt)
		for _, e := range w.Events {
			if err := c.Add(e); err != nil {
				t.Fatal(err)
			}
		}
		online := c.Workload()

		if online.Len() != batch.Len() {
			t.Fatalf("trial %d: online %d reps, batch %d", trial, online.Len(), batch.Len())
		}
		for i := range batch.Events {
			b, o := batch.Events[i], online.Events[i]
			if b.SQL != o.SQL || b.Weight != o.Weight || b.Duration != o.Duration {
				t.Fatalf("trial %d rep %d: batch %q w=%g d=%g, online %q w=%g d=%g",
					trial, i, b.SQL, b.Weight, b.Duration, o.SQL, o.Weight, o.Duration)
			}
		}
		if c.Events() != int64(w.Len()) || c.TotalWeight() != w.TotalWeight() {
			t.Fatalf("trial %d: compressor counters drifted: events=%d weight=%g", trial, c.Events(), c.TotalWeight())
		}
	}
}

func TestCompressorBoundedState(t *testing.T) {
	const templates, maxPer = 5, 4
	c := NewCompressor(CompressOptions{MaxPerTemplate: maxPer})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		sql := fmt.Sprintf("SELECT a FROM t%d WHERE x = %d", rng.Intn(templates), rng.Intn(1<<30))
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Add(&Event{SQL: sql, Stmt: stmt, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Templates() != templates {
		t.Fatalf("templates = %d, want %d", c.Templates(), templates)
	}
	if c.Len() > templates*maxPer {
		t.Fatalf("retained %d reps, bound is %d", c.Len(), templates*maxPer)
	}
	if c.Events() != 20000 || c.TotalWeight() != 20000 {
		t.Fatalf("events=%d weight=%g", c.Events(), c.TotalWeight())
	}

	// Once every template is saturated, each further Add folds into existing
	// state: allocations per event are a small constant (vector scratch),
	// independent of how many events have been streamed through.
	e := &Event{SQL: "SELECT a FROM t0 WHERE x = 123456", Weight: 1}
	stmt, err := sqlparser.Parse(e.SQL)
	if err != nil {
		t.Fatal(err)
	}
	e.Stmt = stmt
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Add(e); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 32 {
		t.Fatalf("steady-state Add allocates %v objects per event; state is not bounded", allocs)
	}
}

func TestCompressorRejectsPoisonedEvents(t *testing.T) {
	c := NewCompressor(CompressOptions{})
	stmt, err := sqlparser.Parse("SELECT a FROM t WHERE x = 1")
	if err != nil {
		t.Fatal(err)
	}
	bad := []*Event{
		{Stmt: stmt, Weight: -1},
		{Stmt: stmt, Weight: math.NaN()},
		{Stmt: stmt, Weight: 1, Duration: math.NaN()},
	}
	for i, e := range bad {
		if err := c.Add(e); err == nil {
			t.Fatalf("event %d should be rejected", i)
		}
	}
	if c.Events() != 0 || c.Len() != 0 {
		t.Fatalf("rejected events leaked into state: events=%d reps=%d", c.Events(), c.Len())
	}
}

func TestCompressEmptyWorkloadNoPanic(t *testing.T) {
	c := Compress(&Workload{}, CompressOptions{})
	if c.Len() != 0 || c.TotalWeight() != 0 {
		t.Fatalf("empty workload must compress to empty, got len=%d", c.Len())
	}
}

func TestCompressFoldsDurationWeighted(t *testing.T) {
	// Two near-identical events (distance below threshold) fold into one
	// representative whose duration is the weighted mean, preserving the
	// Σ weight×duration total.
	w := &Workload{}
	for _, e := range []struct{ x, wt, dur float64 }{{100, 3, 10}, {101, 1, 2}} {
		if err := w.Add(fmt.Sprintf("SELECT a FROM t WHERE x = %g", e.x), e.wt); err != nil {
			t.Fatal(err)
		}
		w.Events[len(w.Events)-1].Duration = e.dur
	}
	// Pin the numeric range wide so 100 vs 101 is within threshold.
	if err := w.Add("SELECT a FROM t WHERE x = 0", 0); err != nil {
		t.Fatal(err)
	}
	// Reorder: range-pinning event first so the scale is wide when 100/101 arrive.
	w.Events = []*Event{w.Events[2], w.Events[0], w.Events[1]}

	c := Compress(w, CompressOptions{MaxPerTemplate: 2, Threshold: 0.1})
	if c.Len() != 2 {
		t.Fatalf("want 2 reps (0 and folded 100/101), got %d", c.Len())
	}
	rep := c.Events[1]
	if rep.Weight != 4 {
		t.Fatalf("folded weight = %g, want 4", rep.Weight)
	}
	want := (10.0*3 + 2.0*1) / 4
	if rep.Duration != want {
		t.Fatalf("folded duration = %g, want weighted mean %g", rep.Duration, want)
	}
	var totIn, totOut float64
	for _, e := range w.Events {
		totIn += e.Weight * e.Duration
	}
	for _, e := range c.Events {
		totOut += e.Weight * e.Duration
	}
	if abs64(totIn-totOut) > 1e-9 {
		t.Fatalf("Σ weight×duration not preserved: %g vs %g", totIn, totOut)
	}
}

func TestCompressRepresentativesAreInputEvents(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) > 150 {
			seeds = seeds[:150]
		}
		w := &Workload{}
		for _, s := range seeds {
			sql := fmt.Sprintf("SELECT a FROM t WHERE x = %d", int(s)%3000)
			if err := w.Add(sql, float64(s%5)+1); err != nil {
				return false
			}
		}
		input := map[string]bool{}
		for _, e := range w.Events {
			input[e.SQL] = true
		}
		c := Compress(w, CompressOptions{MaxPerTemplate: 3})
		for _, e := range c.Events {
			if !input[e.SQL] {
				return false // a representative must be a real input statement
			}
		}
		return c.Len() <= w.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}
