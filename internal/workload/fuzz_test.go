package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadTrace feeds arbitrary bytes to the trace reader and checks the
// ingestion invariants end to end: no panic on any input; the streaming and
// batch readers agree exactly (same error or same events — ReadTrace is a
// StreamTrace sink, so disagreement means state leaked between lines); every
// accepted event carries finite, strictly positive weight and finite,
// non-negative duration (the NaN/Inf/negative rejection this reader exists
// for); and whatever is accepted survives a WriteTrace → ReadTrace round
// trip byte-for-byte.
func FuzzReadTrace(f *testing.F) {
	for _, seed := range []string{
		"SELECT a FROM t WHERE x = 1\n",
		"2\tSELECT a FROM t WHERE x = 1\n# comment\n\n3\t1.5\tSELECT b FROM t\n",
		"2\t0.5\tSELECT a\tFROM t WHERE x = 1\n",     // tab inside SQL
		"NaN\tSELECT a FROM t\n",                     // poisoned weight
		"1\t-Inf\tSELECT a FROM t\n",                 // poisoned duration
		"-2\tSELECT a FROM t\n",                      // negative weight
		"0\tSELECT a FROM t",                         // zero weight, no trailing newline
		"1e300\t1e18\tSELECT a FROM t WHERE x = 1\n", // extreme finite fields
		"2\tnot-a-duration\tignored\n",               // duration folds into SQL, then fails parse
		"0x1p-3\tSELECT a FROM t\n",                  // hex float weight
		"#\n#only comments\n",
		"not sql at all\n",
		"\t\t\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ReadTrace(bytes.NewReader(data))

		var streamed []*Event
		serr := StreamTrace(bytes.NewReader(data), func(e *Event, line int) error {
			streamed = append(streamed, e)
			return nil
		})

		if (err == nil) != (serr == nil) {
			t.Fatalf("readers disagree: ReadTrace err=%v, StreamTrace err=%v", err, serr)
		}
		if err != nil {
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("trace error lost its line number: %v", err)
			}
			return
		}

		if len(w.Events) != len(streamed) {
			t.Fatalf("readers disagree: ReadTrace %d events, StreamTrace %d", len(w.Events), len(streamed))
		}
		total := 0.0
		for i, e := range w.Events {
			s := streamed[i]
			if e.SQL != s.SQL || e.Weight != s.Weight || e.Duration != s.Duration {
				t.Fatalf("event %d differs between readers: %+v vs %+v", i, e, s)
			}
			if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight <= 0 {
				t.Fatalf("accepted event %d has weight %v", i, e.Weight)
			}
			if math.IsNaN(e.Duration) || math.IsInf(e.Duration, 0) || e.Duration < 0 {
				t.Fatalf("accepted event %d has duration %v", i, e.Duration)
			}
			total += e.Weight
		}
		if got := w.TotalWeight(); math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("TotalWeight %v is not finite", got)
		} else if got != total {
			t.Fatalf("TotalWeight %v != sum of accepted weights %v", got, total)
		}

		// Round trip: re-serializing the re-read serialization is a fixed
		// point (%g round-trips float64 exactly; tabs in SQL re-split the
		// same way because the weight and duration fields are always
		// written).
		fp := fingerprint(t, w)
		w2, err := ReadTrace(strings.NewReader(fp))
		if err != nil {
			t.Fatalf("round trip failed to re-read: %v\ntrace:\n%s", err, fp)
		}
		if fp2 := fingerprint(t, w2); fp2 != fp {
			t.Fatalf("round trip not a fixed point:\nfirst:\n%s\nsecond:\n%s", fp, fp2)
		}
	})
}
