package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/sqlparser"
)

// StreamTrace incrementally reads a profiler-style trace in the ReadTrace
// format — one statement per line with optional leading weight and duration
// fields separated by tabs — and hands each parsed event to sink as it
// arrives, together with its 1-based line number. Unlike ReadTrace it never
// materializes the trace: memory use is one line at a time, lines may be
// arbitrarily long (no bufio.Scanner token cap), and a sink that folds
// events into a Compressor tunes multi-million-event traces in
// O(templates × MaxPerTemplate) space.
//
// Every error — unparseable SQL, a non-finite or negative weight or
// duration, or an I/O failure — is reported with the line it occurred on.
// The *Event passed to sink is freshly allocated and never retained or
// reused by the reader, so the sink may keep it. A non-nil error returned
// by the sink stops the stream and is returned wrapped with the line
// number.
func StreamTrace(r io.Reader, sink func(e *Event, line int) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return fmt.Errorf("workload: line %d: %w", lineNo+1, err)
		}
		if line != "" {
			lineNo++
			e, perr := parseTraceLine(line, lineNo)
			if perr != nil {
				return perr
			}
			if e != nil {
				if serr := sink(e, lineNo); serr != nil {
					return fmt.Errorf("workload: line %d: %w", lineNo, serr)
				}
			}
		}
		if err == io.EOF {
			return nil
		}
	}
}

// parseTraceLine parses one physical trace line into an event; it returns
// (nil, nil) for blank and comment lines. Weight and duration fields must be
// finite and non-negative: strconv.ParseFloat happily parses "NaN" and
// "Inf", and a NaN weight silently poisons TotalWeight, percent-improvement
// math, and every greedy cost comparison downstream (NaN compares false
// everywhere, so the search loses determinism instead of failing loudly).
// Rejecting them here, with the line number, is the only place the
// information still exists.
func parseTraceLine(line string, lineNo int) (*Event, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil, nil
	}
	weight, duration := 1.0, 0.0
	sql := line
	parts := strings.SplitN(line, "\t", 3)
	if len(parts) >= 2 {
		if f, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err == nil {
			if err := checkField("weight", f); err != nil {
				return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
			}
			weight = f
			sql = parts[len(parts)-1]
			if len(parts) == 3 {
				if d, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err == nil {
					if err := checkField("duration", d); err != nil {
						return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
					}
					duration = d
				} else {
					sql = parts[1] + "\t" + parts[2]
				}
			}
		}
	}
	if weight == 0 {
		weight = 1 // unspecified, same convention as Workload.Add
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
	}
	return &Event{SQL: sql, Stmt: stmt, Weight: weight, Duration: duration}, nil
}

// checkField rejects the non-finite and negative numeric trace fields that
// would otherwise corrupt downstream weight arithmetic.
func checkField(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("non-finite %s %v", name, v)
	}
	if v < 0 {
		return fmt.Errorf("negative %s %v", name, v)
	}
	return nil
}
