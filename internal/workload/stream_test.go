package workload

import (
	"fmt"
	"strings"
	"testing"
)

// A statement with a >1 MiB constant used to kill ReadTrace's bufio.Scanner
// ("token too long", with no line number); the streaming reader must take it
// in stride.
func longLineSQL() string {
	return "SELECT a FROM t WHERE s = '" + strings.Repeat("x", 2<<20) + "'"
}

func TestStreamTraceArbitraryLineLength(t *testing.T) {
	in := "SELECT a FROM t WHERE x = 1\n" + "3\t" + longLineSQL() + "\n"
	w, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatalf("long line must parse: %v", err)
	}
	if w.Len() != 2 || w.Events[1].Weight != 3 {
		t.Fatalf("len=%d weight=%g", w.Len(), w.Events[1].Weight)
	}
	if len(w.Events[1].SQL) < 2<<20 {
		t.Fatalf("long SQL truncated to %d bytes", len(w.Events[1].SQL))
	}
}

func TestStreamTraceRejectsPoisonedFields(t *testing.T) {
	cases := []struct {
		name string
		line string
		want string // substring of the error
	}{
		{"nan weight", "NaN\tSELECT a FROM t", "line 3: non-finite weight"},
		{"inf weight", "+Inf\tSELECT a FROM t", "line 3: non-finite weight"},
		{"neg inf weight", "-Inf\tSELECT a FROM t", "line 3: non-finite weight"},
		{"negative weight", "-2\tSELECT a FROM t", "line 3: negative weight"},
		{"nan duration", "2\tNaN\tSELECT a FROM t", "line 3: non-finite duration"},
		{"inf duration", "2\tInf\tSELECT a FROM t", "line 3: non-finite duration"},
		{"negative duration", "2\t-0.5\tSELECT a FROM t", "line 3: negative duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Two valid leading lines so the reported line number is load-bearing.
			in := "# header\nSELECT a FROM t WHERE x = 1\n" + tc.line + "\n"
			if _, err := ReadTrace(strings.NewReader(in)); err == nil {
				t.Fatalf("poisoned line %q must be rejected", tc.line)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not carry %q", err, tc.want)
			}
			// The same guard holds on the streaming path.
			err := StreamTrace(strings.NewReader(in), func(*Event, int) error { return nil })
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("StreamTrace error %v does not carry %q", err, tc.want)
			}
		})
	}
}

func TestStreamTraceLineNumbersInParseErrors(t *testing.T) {
	in := "SELECT a FROM t\n\n# comment\nSELECT a FROM\n"
	_, err := ReadTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want line-4 parse error, got %v", err)
	}
}

func TestStreamTraceSinkErrorCarriesLine(t *testing.T) {
	in := "SELECT a FROM t WHERE x = 1\nSELECT a FROM t WHERE x = 2\n"
	n := 0
	err := StreamTrace(strings.NewReader(in), func(*Event, int) error {
		n++
		if n == 2 {
			return fmt.Errorf("sink full")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("sink error not propagated with line: %v", err)
	}
}

func TestStreamTraceMatchesReadTrace(t *testing.T) {
	in := strings.Join([]string{
		"# comment",
		"SELECT a FROM t WHERE x = 1",
		"",
		"5\tSELECT a FROM t WHERE x = 2",
		"3\t1.5\tSELECT b FROM t WHERE y = 9",
		"2\tnot-a-duration\tignored",
	}, "\n")
	// On the last line the duration field fails to parse, so it folds back
	// into the SQL text — which then fails to parse as SQL. Both paths must
	// agree on that error and its line.
	_, rerr := ReadTrace(strings.NewReader(in))
	serr := StreamTrace(strings.NewReader(in), func(*Event, int) error { return nil })
	if rerr == nil || serr == nil || rerr.Error() != serr.Error() {
		t.Fatalf("paths disagree: ReadTrace=%v StreamTrace=%v", rerr, serr)
	}

	valid := strings.Join([]string{
		"SELECT a FROM t WHERE x = 1",
		"5\tSELECT a FROM t WHERE x = 2",
		"3\t1.5\tSELECT b FROM t WHERE y = 9",
	}, "\n") // no trailing newline: the final unterminated line still counts
	w, err := ReadTrace(strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Event
	if err := StreamTrace(strings.NewReader(valid), func(e *Event, _ int) error {
		streamed = append(streamed, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != w.Len() {
		t.Fatalf("streamed %d events, read %d", len(streamed), w.Len())
	}
	for i, e := range streamed {
		b := w.Events[i]
		if e.SQL != b.SQL || e.Weight != b.Weight || e.Duration != b.Duration {
			t.Fatalf("event %d differs: %+v vs %+v", i, e, b)
		}
	}
}
