// Package workload models the workload a DBA hands to the tuning advisor —
// a set of SQL statements obtained from a profiler-style trace or a SQL
// file — and implements workload compression (paper §5.1): partition the
// workload by query signature (template), then pick a small set of
// representatives per partition with a clustering-based method, so tuning
// time drops dramatically with almost no loss in recommendation quality.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/sqlparser"
)

// Event is one workload statement with its execution weight (how many times
// it runs in the traced interval) and, when known, an observed duration from
// the trace.
type Event struct {
	SQL    string
	Stmt   sqlparser.Statement
	Weight float64
	// Duration is the traced per-execution duration (arbitrary units);
	// zero when the trace carries no timing.
	Duration float64
}

// Signature returns the event's templatization key.
func (e *Event) Signature() string { return sqlparser.Signature(e.Stmt) }

// Workload is an ordered multiset of events.
type Workload struct {
	Events []*Event
}

// New parses the given SQL texts into a workload with unit weights.
func New(sqls ...string) (*Workload, error) {
	w := &Workload{}
	for i, q := range sqls {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("workload: statement %d: %w", i+1, err)
		}
		w.Events = append(w.Events, &Event{SQL: q, Stmt: stmt, Weight: 1})
	}
	return w, nil
}

// Statement is the wire form of one weighted workload event — the session
// input the tuning service and the XML schema both decode into.
type Statement struct {
	SQL    string  `json:"sql"`
	Weight float64 `json:"weight,omitempty"`
}

// FromStatements parses weighted statements into a workload. A weight of 0
// counts as 1, mirroring trace semantics; negative or non-finite weights are
// rejected. An empty list is an error: a tuning session needs something to
// tune.
func FromStatements(stmts []Statement) (*Workload, error) {
	w := &Workload{}
	for i, st := range stmts {
		if strings.TrimSpace(st.SQL) == "" {
			return nil, fmt.Errorf("workload: statement %d is empty", i+1)
		}
		if err := w.Add(st.SQL, st.Weight); err != nil {
			return nil, fmt.Errorf("workload: statement %d: %w", i+1, err)
		}
	}
	if w.Len() == 0 {
		return nil, fmt.Errorf("workload: no statements")
	}
	return w, nil
}

// MustNew is New for statically known workloads; it panics on parse errors.
func MustNew(sqls ...string) *Workload {
	w, err := New(sqls...)
	if err != nil {
		panic(err)
	}
	return w
}

// Add appends a parsed statement with the given weight. A weight of 0 means
// "unspecified" and counts as 1; negative, NaN, and ±Inf weights are
// rejected — a single NaN weight would poison TotalWeight and every cost
// comparison the advisor makes (NaN compares false everywhere), so it must
// not enter the workload at all.
func (w *Workload) Add(sql string, weight float64) error {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if err := checkField("weight", weight); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if weight == 0 {
		weight = 1
	}
	w.Events = append(w.Events, &Event{SQL: sql, Stmt: stmt, Weight: weight})
	return nil
}

// Len returns the number of distinct events.
func (w *Workload) Len() int { return len(w.Events) }

// TotalWeight returns the summed event weights (total traced statements).
func (w *Workload) TotalWeight() float64 {
	var t float64
	for _, e := range w.Events {
		t += e.Weight
	}
	return t
}

// Templates partitions the workload by signature, preserving first-seen
// template order.
func (w *Workload) Templates() []Template {
	idx := map[string]int{}
	var out []Template
	for _, e := range w.Events {
		sig := e.Signature()
		i, ok := idx[sig]
		if !ok {
			i = len(out)
			idx[sig] = i
			out = append(out, Template{Signature: sig})
		}
		out[i].Events = append(out[i].Events, e)
	}
	return out
}

// Template is one signature partition of a workload.
type Template struct {
	Signature string
	Events    []*Event
}

// Weight returns the total weight of the template's events.
func (t Template) Weight() float64 {
	var s float64
	for _, e := range t.Events {
		s += e.Weight
	}
	return s
}

// ReadTrace reads a profiler-style trace: one statement per line, with
// optional leading "weight" and "duration" numeric fields separated by tabs:
//
//	SQL
//	weight <TAB> SQL
//	weight <TAB> duration <TAB> SQL
//
// Blank lines and lines starting with '#' are skipped. Lines may be
// arbitrarily long (a giant IN-list is still one statement), parse errors
// and invalid weight/duration fields carry the line number, and non-finite
// or negative numeric fields are rejected. ReadTrace materializes the whole
// trace; for traces too large to hold in memory, stream it through
// StreamTrace into a Compressor instead.
func ReadTrace(r io.Reader) (*Workload, error) {
	w := &Workload{}
	err := StreamTrace(r, func(e *Event, _ int) error {
		w.Events = append(w.Events, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// WriteTrace writes the workload in the format ReadTrace consumes.
func WriteTrace(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	for _, e := range wl.Events {
		if _, err := fmt.Fprintf(bw, "%g\t%g\t%s\n", e.Weight, e.Duration, e.SQL); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CompressOptions tunes workload compression.
type CompressOptions struct {
	// MaxPerTemplate caps the representatives kept per template partition
	// (default 4).
	MaxPerTemplate int
	// Threshold stops adding representatives to a partition once the
	// farthest remaining event is within this normalized constant-space
	// distance of an existing representative (default 0.1).
	Threshold float64
}

// Compress implements workload compression (paper §5.1, following the
// technique of Chaudhuri, Gupta, Narasayya [7]): the workload is partitioned
// by statement signature — exploiting the inherent templatization of real
// workloads — and a small subset of each partition is chosen with a greedy
// k-center clustering over the statements' constant vectors. Each surviving
// representative absorbs the weight (and, weighted, the traced duration) of
// the events in its cluster, so the compressed workload preserves total cost
// structure.
//
// Uniform random sampling ignores cost and structure; tuning the top-k
// queries by cost can starve whole templates. Compression avoids both
// failure modes by construction.
//
// Compress is the batch entry point of the online Compressor: it feeds the
// events through one in order, so batch and streaming compression of the
// same input produce identical representatives. An event whose weight or
// duration is invalid (possible only in a hand-built workload — every
// ingestion path rejects them) passes through uncompressed rather than
// poisoning a cluster. An empty workload compresses to an empty workload.
func Compress(w *Workload, opt CompressOptions) *Workload {
	c := NewCompressor(opt)
	var passthrough []*Event
	for _, e := range w.Events {
		if err := c.Add(e); err != nil {
			cp := *e
			passthrough = append(passthrough, &cp)
		}
	}
	out := c.Workload()
	out.Events = append(out.Events, passthrough...)
	return out
}

// lit is a constant in normalized form for distance computation.
type lit struct {
	num   float64
	str   string
	isNum bool
}

func litVector(s sqlparser.Statement) []lit {
	var out []lit
	for _, l := range sqlparser.Constants(s) {
		switch l.Kind {
		case sqlparser.LitNumber:
			out = append(out, lit{num: l.F, isNum: true})
		case sqlparser.LitString:
			out = append(out, lit{str: l.S})
		default:
			out = append(out, lit{})
		}
	}
	return out
}

// litDistance is the normalized L∞ distance between two constant vectors of
// the same template: numeric positions contribute their normalized absolute
// difference; string positions contribute 0 when equal and 1 otherwise.
func litDistance(a, b []lit, scale []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var d float64
	for p := 0; p < n; p++ {
		if p >= len(a) || p >= len(b) {
			d = max64(d, 1)
			continue
		}
		switch {
		case a[p].isNum && b[p].isNum:
			if scale[p] > 0 {
				d = max64(d, abs64(a[p].num-b[p].num)/scale[p])
			}
		case !a[p].isNum && !b[p].isNum:
			if a[p].str != b[p].str {
				d = max64(d, 1)
			}
		default:
			d = max64(d, 1)
		}
	}
	return d
}

func abs64(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
