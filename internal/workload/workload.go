// Package workload models the workload a DBA hands to the tuning advisor —
// a set of SQL statements obtained from a profiler-style trace or a SQL
// file — and implements workload compression (paper §5.1): partition the
// workload by query signature (template), then pick a small set of
// representatives per partition with a clustering-based method, so tuning
// time drops dramatically with almost no loss in recommendation quality.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sqlparser"
)

// Event is one workload statement with its execution weight (how many times
// it runs in the traced interval) and, when known, an observed duration from
// the trace.
type Event struct {
	SQL    string
	Stmt   sqlparser.Statement
	Weight float64
	// Duration is the traced per-execution duration (arbitrary units);
	// zero when the trace carries no timing.
	Duration float64
}

// Signature returns the event's templatization key.
func (e *Event) Signature() string { return sqlparser.Signature(e.Stmt) }

// Workload is an ordered multiset of events.
type Workload struct {
	Events []*Event
}

// New parses the given SQL texts into a workload with unit weights.
func New(sqls ...string) (*Workload, error) {
	w := &Workload{}
	for i, q := range sqls {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			return nil, fmt.Errorf("workload: statement %d: %w", i+1, err)
		}
		w.Events = append(w.Events, &Event{SQL: q, Stmt: stmt, Weight: 1})
	}
	return w, nil
}

// Statement is the wire form of one weighted workload event — the session
// input the tuning service and the XML schema both decode into.
type Statement struct {
	SQL    string  `json:"sql"`
	Weight float64 `json:"weight,omitempty"`
}

// FromStatements parses weighted statements into a workload. Weights ≤ 0
// count as 1, mirroring trace semantics. An empty list is an error: a
// tuning session needs something to tune.
func FromStatements(stmts []Statement) (*Workload, error) {
	w := &Workload{}
	for i, st := range stmts {
		if strings.TrimSpace(st.SQL) == "" {
			return nil, fmt.Errorf("workload: statement %d is empty", i+1)
		}
		if err := w.Add(st.SQL, st.Weight); err != nil {
			return nil, fmt.Errorf("workload: statement %d: %w", i+1, err)
		}
	}
	if w.Len() == 0 {
		return nil, fmt.Errorf("workload: no statements")
	}
	return w, nil
}

// MustNew is New for statically known workloads; it panics on parse errors.
func MustNew(sqls ...string) *Workload {
	w, err := New(sqls...)
	if err != nil {
		panic(err)
	}
	return w
}

// Add appends a parsed statement with the given weight.
func (w *Workload) Add(sql string, weight float64) error {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if weight <= 0 {
		weight = 1
	}
	w.Events = append(w.Events, &Event{SQL: sql, Stmt: stmt, Weight: weight})
	return nil
}

// Len returns the number of distinct events.
func (w *Workload) Len() int { return len(w.Events) }

// TotalWeight returns the summed event weights (total traced statements).
func (w *Workload) TotalWeight() float64 {
	var t float64
	for _, e := range w.Events {
		t += e.Weight
	}
	return t
}

// Templates partitions the workload by signature, preserving first-seen
// template order.
func (w *Workload) Templates() []Template {
	idx := map[string]int{}
	var out []Template
	for _, e := range w.Events {
		sig := e.Signature()
		i, ok := idx[sig]
		if !ok {
			i = len(out)
			idx[sig] = i
			out = append(out, Template{Signature: sig})
		}
		out[i].Events = append(out[i].Events, e)
	}
	return out
}

// Template is one signature partition of a workload.
type Template struct {
	Signature string
	Events    []*Event
}

// Weight returns the total weight of the template's events.
func (t Template) Weight() float64 {
	var s float64
	for _, e := range t.Events {
		s += e.Weight
	}
	return s
}

// ReadTrace reads a profiler-style trace: one statement per line, with
// optional leading "weight" and "duration" numeric fields separated by tabs:
//
//	SQL
//	weight <TAB> SQL
//	weight <TAB> duration <TAB> SQL
//
// Blank lines and lines starting with '#' are skipped.
func ReadTrace(r io.Reader) (*Workload, error) {
	w := &Workload{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		weight, duration := 1.0, 0.0
		sql := line
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) >= 2 {
			if f, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err == nil {
				weight = f
				sql = parts[len(parts)-1]
				if len(parts) == 3 {
					if d, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err == nil {
						duration = d
					} else {
						sql = parts[1] + "\t" + parts[2]
					}
				}
			}
		}
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		w.Events = append(w.Events, &Event{SQL: sql, Stmt: stmt, Weight: weight, Duration: duration})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return w, nil
}

// WriteTrace writes the workload in the format ReadTrace consumes.
func WriteTrace(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	for _, e := range wl.Events {
		if _, err := fmt.Fprintf(bw, "%g\t%g\t%s\n", e.Weight, e.Duration, e.SQL); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CompressOptions tunes workload compression.
type CompressOptions struct {
	// MaxPerTemplate caps the representatives kept per template partition
	// (default 4).
	MaxPerTemplate int
	// Threshold stops adding representatives to a partition once the
	// farthest remaining event is within this normalized constant-space
	// distance of an existing representative (default 0.1).
	Threshold float64
}

// Compress implements workload compression (paper §5.1, following the
// technique of Chaudhuri, Gupta, Narasayya [7]): the workload is partitioned
// by statement signature — exploiting the inherent templatization of real
// workloads — and a small subset of each partition is chosen with a
// clustering method over the statements' constant vectors. Each surviving
// representative absorbs the weight of the events in its cluster, so the
// compressed workload preserves total cost structure.
//
// Uniform random sampling ignores cost and structure; tuning the top-k
// queries by cost can starve whole templates. Compression avoids both
// failure modes by construction.
func Compress(w *Workload, opt CompressOptions) *Workload {
	maxPer := opt.MaxPerTemplate
	if maxPer <= 0 {
		maxPer = 4
	}
	threshold := opt.Threshold
	if threshold <= 0 {
		threshold = 0.1
	}
	out := &Workload{}
	for _, tmpl := range w.Templates() {
		reps := pickRepresentatives(tmpl.Events, maxPer, threshold)
		out.Events = append(out.Events, reps...)
	}
	return out
}

// pickRepresentatives runs a greedy k-center clustering over the events'
// constant vectors: start from the highest-weighted event, repeatedly add
// the event farthest from the chosen set, stop at maxPer representatives or
// when every remaining event is within threshold of a representative. Each
// event's weight is then assigned to its nearest representative.
func pickRepresentatives(events []*Event, maxPer int, threshold float64) []*Event {
	if len(events) == 1 {
		e := *events[0]
		return []*Event{&e}
	}
	vecs := make([][]lit, len(events))
	for i, e := range events {
		vecs[i] = litVector(e.Stmt)
	}
	// Normalization scale per constant position.
	scale := positionScales(vecs)

	// Seed: the heaviest event (ties to the first).
	seed := 0
	for i, e := range events {
		if e.Weight > events[seed].Weight {
			seed = i
		}
	}
	chosen := []int{seed}
	minDist := make([]float64, len(events))
	for i := range events {
		minDist[i] = litDistance(vecs[i], vecs[seed], scale)
	}
	for len(chosen) < maxPer {
		far, farDist := -1, threshold
		for i := range events {
			if minDist[i] > farDist {
				far, farDist = i, minDist[i]
			}
		}
		if far < 0 {
			break // everything is close to a representative
		}
		chosen = append(chosen, far)
		for i := range events {
			if d := litDistance(vecs[i], vecs[far], scale); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Ints(chosen)

	// Copy representatives and fold cluster weights into them.
	reps := make([]*Event, len(chosen))
	repIdx := make(map[int]int, len(chosen))
	for k, i := range chosen {
		cp := *events[i]
		cp.Weight = 0
		reps[k] = &cp
		repIdx[i] = k
	}
	for i, e := range events {
		best, bestD := 0, litDistance(vecs[i], vecs[chosen[0]], scale)
		for k := 1; k < len(chosen); k++ {
			if d := litDistance(vecs[i], vecs[chosen[k]], scale); d < bestD {
				best, bestD = k, d
			}
		}
		reps[best].Weight += e.Weight
	}
	return reps
}

// lit is a constant in normalized form for distance computation.
type lit struct {
	num   float64
	str   string
	isNum bool
}

func litVector(s sqlparser.Statement) []lit {
	var out []lit
	for _, l := range sqlparser.Constants(s) {
		switch l.Kind {
		case sqlparser.LitNumber:
			out = append(out, lit{num: l.F, isNum: true})
		case sqlparser.LitString:
			out = append(out, lit{str: l.S})
		default:
			out = append(out, lit{})
		}
	}
	return out
}

// positionScales returns, per constant position, the value spread used to
// normalize numeric distances into [0,1].
func positionScales(vecs [][]lit) []float64 {
	n := 0
	for _, v := range vecs {
		if len(v) > n {
			n = len(v)
		}
	}
	scale := make([]float64, n)
	for p := 0; p < n; p++ {
		lo, hi := 0.0, 0.0
		first := true
		for _, v := range vecs {
			if p >= len(v) || !v[p].isNum {
				continue
			}
			if first {
				lo, hi = v[p].num, v[p].num
				first = false
				continue
			}
			if v[p].num < lo {
				lo = v[p].num
			}
			if v[p].num > hi {
				hi = v[p].num
			}
		}
		scale[p] = hi - lo
	}
	return scale
}

// litDistance is the normalized L∞ distance between two constant vectors of
// the same template: numeric positions contribute their normalized absolute
// difference; string positions contribute 0 when equal and 1 otherwise.
func litDistance(a, b []lit, scale []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var d float64
	for p := 0; p < n; p++ {
		if p >= len(a) || p >= len(b) {
			d = max64(d, 1)
			continue
		}
		switch {
		case a[p].isNum && b[p].isNum:
			if scale[p] > 0 {
				d = max64(d, abs64(a[p].num-b[p].num)/scale[p])
			}
		case !a[p].isNum && !b[p].isNum:
			if a[p].str != b[p].str {
				d = max64(d, 1)
			}
		default:
			d = max64(d, 1)
		}
	}
	return d
}

func abs64(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
