package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndTemplates(t *testing.T) {
	w := MustNew(
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"SELECT b FROM t WHERE x = 1",
	)
	if w.Len() != 3 || w.TotalWeight() != 3 {
		t.Fatalf("len=%d weight=%g", w.Len(), w.TotalWeight())
	}
	tmpls := w.Templates()
	if len(tmpls) != 2 {
		t.Fatalf("templates = %d, want 2", len(tmpls))
	}
	if len(tmpls[0].Events) != 2 || tmpls[0].Weight() != 2 {
		t.Fatalf("first template = %+v", tmpls[0])
	}
}

func TestNewParseError(t *testing.T) {
	if _, err := New("SELECT a FROM t", "NOT SQL AT ALL"); err == nil {
		t.Fatal("expected parse error")
	}
	w := &Workload{}
	if err := w.Add("garbage", 1); err == nil {
		t.Fatal("Add should propagate parse errors")
	}
	if err := w.Add("SELECT a FROM t", -5); err == nil {
		t.Fatal("Add should reject negative weights")
	}
	if err := w.Add("SELECT a FROM t", 0); err != nil {
		t.Fatal(err)
	}
	if w.Events[0].Weight != 1 {
		t.Fatal("weight 0 (unspecified) normalizes to 1")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := strings.Join([]string{
		"# a comment",
		"",
		"SELECT a FROM t WHERE x = 1",
		"5\tSELECT a FROM t WHERE x = 2",
		"3\t1.5\tSELECT b FROM t WHERE y = 9",
	}, "\n")
	w, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
	if w.Events[1].Weight != 5 {
		t.Fatalf("weight = %g", w.Events[1].Weight)
	}
	if w.Events[2].Duration != 1.5 {
		t.Fatalf("duration = %g", w.Events[2].Duration)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != w.Len() || w2.TotalWeight() != w.TotalWeight() {
		t.Fatal("round trip mismatch")
	}
	for i := range w.Events {
		if w2.Events[i].SQL != w.Events[i].SQL {
			t.Fatalf("event %d SQL mismatch", i)
		}
	}
}

func TestReadTraceBadSQL(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("SELECT a FROM\n")); err == nil {
		t.Fatal("expected error")
	}
}

func TestCompressPreservesWeightAndTemplates(t *testing.T) {
	var sqls []string
	rng := rand.New(rand.NewSource(5))
	// 3 templates × 200 instances.
	for i := 0; i < 200; i++ {
		sqls = append(sqls,
			fmt.Sprintf("SELECT a FROM t WHERE x = %d", rng.Intn(1000)),
			fmt.Sprintf("SELECT b, SUM(c) FROM t WHERE y < %d GROUP BY b", rng.Intn(500)),
			fmt.Sprintf("UPDATE t SET c = %d WHERE id = %d", rng.Intn(9), rng.Intn(10000)),
		)
	}
	w := MustNew(sqls...)
	c := Compress(w, CompressOptions{})
	if c.Len() >= w.Len()/10 {
		t.Fatalf("compression too weak: %d → %d", w.Len(), c.Len())
	}
	if got, want := c.TotalWeight(), w.TotalWeight(); got != want {
		t.Fatalf("weight not preserved: %g vs %g", got, want)
	}
	// Every template survives.
	have := map[string]bool{}
	for _, e := range c.Events {
		have[e.Signature()] = true
	}
	for _, tmpl := range w.Templates() {
		if !have[tmpl.Signature] {
			t.Fatalf("template lost: %s", tmpl.Signature)
		}
	}
	// Per-template cap respected.
	for _, tmpl := range c.Templates() {
		if len(tmpl.Events) > 4 {
			t.Fatalf("template kept %d reps, cap is 4", len(tmpl.Events))
		}
	}
}

func TestCompressDistinctQueriesAreKept(t *testing.T) {
	// A workload of all-different templates (like TPCH22) cannot compress.
	w := MustNew(
		"SELECT a FROM t WHERE x = 1",
		"SELECT b FROM t WHERE y = 1",
		"SELECT c, COUNT(*) FROM t GROUP BY c",
		"DELETE FROM t WHERE z = 0",
	)
	c := Compress(w, CompressOptions{})
	if c.Len() != w.Len() {
		t.Fatalf("distinct templates must all survive: %d → %d", w.Len(), c.Len())
	}
}

func TestCompressSpreadConstantsKeepMultipleReps(t *testing.T) {
	// Constants at opposite ends of the domain are far apart in the
	// clustering distance, so more than one representative survives.
	var sqls []string
	for i := 0; i < 50; i++ {
		sqls = append(sqls, fmt.Sprintf("SELECT a FROM t WHERE x = %d", i))
		sqls = append(sqls, fmt.Sprintf("SELECT a FROM t WHERE x = %d", 1000000+i))
	}
	w := MustNew(sqls...)
	c := Compress(w, CompressOptions{MaxPerTemplate: 4})
	if c.Len() < 2 {
		t.Fatalf("spread constants should keep ≥ 2 reps, got %d", c.Len())
	}
	if c.TotalWeight() != 100 {
		t.Fatalf("weight = %g", c.TotalWeight())
	}
}

// fingerprint serializes a workload into a comparable string.
func fingerprint(t *testing.T, w *Workload) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTraceRoundTripFingerprint(t *testing.T) {
	// Tabs inside SQL and extreme-but-finite weights must survive
	// WriteTrace → ReadTrace byte-for-byte (%g round-trips float64 exactly).
	w := &Workload{}
	add := func(sql string, weight, duration float64) {
		t.Helper()
		if err := w.Add(sql, weight); err != nil {
			t.Fatal(err)
		}
		w.Events[len(w.Events)-1].Duration = duration
	}
	add("SELECT a\tFROM t WHERE x = 1", 1, 0)
	add("SELECT a FROM t\tWHERE\ts = 'v'", 1e300, 0.25)
	add("SELECT b FROM t WHERE y < 7", 5e-300, 1e18)
	add("UPDATE t SET c = 2\tWHERE id = 3", 123456789.125, 3)

	fp := fingerprint(t, w)
	w2, err := ReadTrace(strings.NewReader(fp))
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, w2); got != fp {
		t.Fatalf("round trip changed the trace:\n-- wrote --\n%s-- reread --\n%s", fp, got)
	}
	for i := range w.Events {
		a, b := w.Events[i], w2.Events[i]
		if a.SQL != b.SQL || a.Weight != b.Weight || a.Duration != b.Duration {
			t.Fatalf("event %d drifted: %+v vs %+v", i, a, b)
		}
	}
}

func TestCompressWeightConservationProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 120 {
			seeds = seeds[:120]
		}
		w := &Workload{}
		for _, s := range seeds {
			sql := fmt.Sprintf("SELECT a FROM t WHERE x = %d AND s = '%c'", int(s)%2000, 'a'+rune(s%5))
			if err := w.Add(sql, float64(s%7)+1); err != nil {
				return false
			}
		}
		c := Compress(w, CompressOptions{MaxPerTemplate: 3, Threshold: 0.2})
		if c.Len() > w.Len() {
			return false
		}
		diff := c.TotalWeight() - w.TotalWeight()
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
