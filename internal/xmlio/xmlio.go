// Package xmlio defines the public XML schema for physical database design
// that forms the basis of the advisor's input and output (paper §6.1).
// A public schema makes the tool scriptable, lets other tools program
// against it, and lets users feed one run's output configuration — possibly
// modified — into a subsequent run (iterative tuning, §6.3).
package xmlio

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/workload"
)

// Namespace is the schema namespace identifier.
const Namespace = "urn:repro:dta:2005:xml"

// DTAXML is the document root: an Input (what to tune) and, after tuning,
// an Output (the recommendation).
type DTAXML struct {
	XMLName xml.Name `xml:"DTAXML"`
	Xmlns   string   `xml:"xmlns,attr,omitempty"`
	Input   *Input   `xml:"Input,omitempty"`
	Output  *Output  `xml:"Output,omitempty"`
}

// Input describes one tuning request.
type Input struct {
	Server        string         `xml:"Server,omitempty"`
	Databases     []string       `xml:"Database,omitempty"`
	Workload      *Workload      `xml:"Workload,omitempty"`
	Options       *TuningOptions `xml:"TuningOptions,omitempty"`
	Configuration *Configuration `xml:"Configuration,omitempty"` // user-specified (§6.2)
	EvaluateOnly  bool           `xml:"EvaluateOnly,omitempty"`
}

// Workload is a list of weighted statements.
type Workload struct {
	Statements []Statement `xml:"Statement"`
}

// Statement is one workload event.
type Statement struct {
	Weight   float64 `xml:"Weight,attr,omitempty"`
	Duration float64 `xml:"Duration,attr,omitempty"`
	SQL      string  `xml:",chardata"`
}

// TuningOptions mirror core.Options.
type TuningOptions struct {
	FeatureSet          string `xml:"FeatureSet,omitempty"` // IDX, IDX_MV, IDX_PARTITIONING, ALL
	StorageBudgetMB     int64  `xml:"StorageBudgetMB,omitempty"`
	AlignedPartitioning bool   `xml:"AlignedPartitioning,omitempty"`
	TimeLimitMinutes    int    `xml:"TimeLimitMinutes,omitempty"`
	DisableCompression  bool   `xml:"DisableCompression,omitempty"`
	GreedySeedSize      int    `xml:"GreedySeedSize,omitempty"`
	MaxStructures       int    `xml:"MaxStructures,omitempty"`
	AllowDrops          bool   `xml:"AllowDropExistingStructures,omitempty"`
}

// Configuration is the XML form of a physical design.
type Configuration struct {
	Indexes       []Index             `xml:"Index,omitempty"`
	Views         []MaterializedView  `xml:"MaterializedView,omitempty"`
	Partitionings []TablePartitioning `xml:"TablePartitioning,omitempty"`
}

// Index is the XML form of one index.
type Index struct {
	Table        string           `xml:"Table,attr"`
	Clustered    bool             `xml:"Clustered,attr,omitempty"`
	KeyColumns   []string         `xml:"KeyColumn"`
	IncludeCols  []string         `xml:"IncludeColumn,omitempty"`
	Partitioning *PartitionScheme `xml:"Partition,omitempty"`
}

// PartitionScheme is the XML form of single-column range partitioning.
type PartitionScheme struct {
	Column     string    `xml:"Column,attr"`
	Boundaries []float64 `xml:"Boundary"`
}

// TablePartitioning partitions a table's heap/clustered data.
type TablePartitioning struct {
	Table string `xml:"Table,attr"`
	PartitionScheme
}

// MaterializedView is the XML form of one view.
type MaterializedView struct {
	Tables        []string         `xml:"Table"`
	Joins         []Join           `xml:"Join,omitempty"`
	OutputColumns []Column         `xml:"OutputColumn,omitempty"`
	GroupBy       []Column         `xml:"GroupByColumn,omitempty"`
	Aggregates    []Aggregate      `xml:"Aggregate,omitempty"`
	EstimatedRows int64            `xml:"EstimatedRows,attr,omitempty"`
	Partitioning  *PartitionScheme `xml:"Partition,omitempty"`
}

// Join is one equality join predicate.
type Join struct {
	LeftTable   string `xml:"LeftTable,attr"`
	LeftColumn  string `xml:"LeftColumn,attr"`
	RightTable  string `xml:"RightTable,attr"`
	RightColumn string `xml:"RightColumn,attr"`
}

// Column is a table-qualified column.
type Column struct {
	Table  string `xml:"Table,attr"`
	Column string `xml:"Column,attr"`
}

// Aggregate is one view aggregate.
type Aggregate struct {
	Func   string `xml:"Func,attr"`
	Table  string `xml:"Table,attr,omitempty"`
	Column string `xml:"Column,attr,omitempty"`
}

// Output carries the recommendation and analysis reports.
type Output struct {
	Recommendation *RecommendationXML `xml:"Recommendation,omitempty"`
}

// RecommendationXML is the XML form of a core.Recommendation.
type RecommendationXML struct {
	BaseCost        float64        `xml:"BaseCost,attr"`
	RecommendedCost float64        `xml:"RecommendedCost,attr"`
	ImprovementPct  float64        `xml:"ImprovementPct,attr"`
	StorageMB       float64        `xml:"StorageMB,attr"`
	EventsTuned     int            `xml:"EventsTuned,attr"`
	WhatIfCalls     int64          `xml:"WhatIfCalls,attr"`
	DurationMS      int64          `xml:"DurationMS,attr"`
	Configuration   *Configuration `xml:"Configuration"`
	Reports         []QueryReport  `xml:"Report>Query,omitempty"`
	Usage           []UsageXML     `xml:"UsageReport>Structure,omitempty"`
	DDL             []string       `xml:"DDL>Statement,omitempty"`
}

// UsageXML is the XML form of one structure-usage row (§6.3).
type UsageXML struct {
	Queries      int     `xml:"Queries,attr"`
	WeightedUses float64 `xml:"WeightedUses,attr"`
	CostSharePct float64 `xml:"CostSharePct,attr"`
	Key          string  `xml:",chardata"`
}

// QueryReport is the XML form of one per-query analysis row (§6.3).
type QueryReport struct {
	Weight     float64  `xml:"Weight,attr"`
	CostBefore float64  `xml:"CostBefore,attr"`
	CostAfter  float64  `xml:"CostAfter,attr"`
	SQL        string   `xml:"SQL"`
	Structures []string `xml:"UsedStructure,omitempty"`
}

// Encode writes the document with the standard XML header.
func Encode(w io.Writer, doc *DTAXML) error {
	if doc.Xmlns == "" {
		doc.Xmlns = Namespace
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlio: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Decode parses a document.
func Decode(r io.Reader) (*DTAXML, error) {
	var doc DTAXML
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmlio: %w", err)
	}
	return &doc, nil
}

// FromConfiguration converts a catalog configuration to its XML form.
func FromConfiguration(cfg *catalog.Configuration) *Configuration {
	if cfg == nil {
		return nil
	}
	out := &Configuration{}
	for _, ix := range cfg.Indexes {
		out.Indexes = append(out.Indexes, Index{
			Table:        ix.Table,
			Clustered:    ix.Clustered,
			KeyColumns:   append([]string(nil), ix.KeyColumns...),
			IncludeCols:  append([]string(nil), ix.IncludeCols...),
			Partitioning: fromScheme(ix.Partitioning),
		})
	}
	for _, v := range cfg.Views {
		mv := MaterializedView{
			Tables:        append([]string(nil), v.Tables...),
			EstimatedRows: v.Rows,
			Partitioning:  fromScheme(v.Partitioning),
		}
		for _, j := range v.JoinPreds {
			mv.Joins = append(mv.Joins, Join{
				LeftTable: j.Left.Table, LeftColumn: j.Left.Column,
				RightTable: j.Right.Table, RightColumn: j.Right.Column,
			})
		}
		for _, c := range v.OutputColumns {
			mv.OutputColumns = append(mv.OutputColumns, Column{Table: c.Table, Column: c.Column})
		}
		for _, c := range v.GroupBy {
			mv.GroupBy = append(mv.GroupBy, Column{Table: c.Table, Column: c.Column})
		}
		for _, a := range v.Aggs {
			mv.Aggregates = append(mv.Aggregates, Aggregate{Func: a.Func, Table: a.Col.Table, Column: a.Col.Column})
		}
		out.Views = append(out.Views, mv)
	}
	for table, p := range cfg.TableParts {
		out.Partitionings = append(out.Partitionings, TablePartitioning{
			Table:           table,
			PartitionScheme: *fromScheme(p),
		})
	}
	return out
}

// ToConfiguration converts the XML form back to a catalog configuration.
func ToConfiguration(x *Configuration) *catalog.Configuration {
	cfg := catalog.NewConfiguration()
	if x == nil {
		return cfg
	}
	for _, xi := range x.Indexes {
		ix := catalog.NewIndex(xi.Table, xi.KeyColumns...)
		ix.Clustered = xi.Clustered
		if len(xi.IncludeCols) > 0 {
			ix = ix.WithInclude(xi.IncludeCols...)
		}
		ix.Partitioning = toScheme(xi.Partitioning)
		cfg.AddIndex(ix)
	}
	for _, xv := range x.Views {
		var joins []catalog.JoinPred
		for _, j := range xv.Joins {
			joins = append(joins, catalog.JoinPred{
				Left:  catalog.NewColRef(j.LeftTable, j.LeftColumn),
				Right: catalog.NewColRef(j.RightTable, j.RightColumn),
			})
		}
		var outs, groups []catalog.ColRef
		for _, c := range xv.OutputColumns {
			outs = append(outs, catalog.NewColRef(c.Table, c.Column))
		}
		for _, c := range xv.GroupBy {
			groups = append(groups, catalog.NewColRef(c.Table, c.Column))
		}
		var aggs []catalog.Agg
		for _, a := range xv.Aggregates {
			ag := catalog.Agg{Func: strings.ToUpper(a.Func)}
			if a.Column != "" {
				ag.Col = catalog.ColRef{Table: strings.ToLower(a.Table), Column: strings.ToLower(a.Column)}
			}
			aggs = append(aggs, ag)
		}
		v := catalog.NewMaterializedView(xv.Tables, joins, outs, groups, aggs, xv.EstimatedRows)
		v.Partitioning = toScheme(xv.Partitioning)
		cfg.AddView(v)
	}
	for _, tp := range x.Partitionings {
		cfg.SetTablePartitioning(tp.Table, catalog.NewPartitionScheme(tp.Column, tp.Boundaries...))
	}
	return cfg
}

func fromScheme(p *catalog.PartitionScheme) *PartitionScheme {
	if p == nil {
		return nil
	}
	return &PartitionScheme{Column: p.Column, Boundaries: append([]float64(nil), p.Boundaries...)}
}

func toScheme(p *PartitionScheme) *catalog.PartitionScheme {
	if p == nil {
		return nil
	}
	return catalog.NewPartitionScheme(p.Column, p.Boundaries...)
}

// FromRecommendation converts a core recommendation to its XML output form,
// including DDL-like statements for readability.
func FromRecommendation(rec *core.Recommendation) *RecommendationXML {
	out := &RecommendationXML{
		BaseCost:        rec.BaseCost,
		RecommendedCost: rec.Cost,
		ImprovementPct:  100 * rec.Improvement,
		StorageMB:       float64(rec.StorageBytes) / (1 << 20),
		EventsTuned:     rec.EventsTuned,
		WhatIfCalls:     rec.WhatIfCalls,
		DurationMS:      rec.Duration.Milliseconds(),
		Configuration:   FromConfiguration(rec.Config),
	}
	for _, r := range rec.Reports {
		out.Reports = append(out.Reports, QueryReport{
			Weight: r.Weight, CostBefore: r.CostBefore, CostAfter: r.CostAfter,
			SQL: r.SQL, Structures: r.UsedStructures,
		})
	}
	for _, u := range rec.Usage {
		out.Usage = append(out.Usage, UsageXML{
			Queries: u.Queries, WeightedUses: u.WeightedUses,
			CostSharePct: 100 * u.CostShare, Key: u.Structure,
		})
	}
	for _, s := range rec.NewStructures {
		out.DDL = append(out.DDL, "CREATE "+s.String())
	}
	for _, s := range rec.DroppedStructures {
		out.DDL = append(out.DDL, "DROP "+s.String())
	}
	return out
}

// ToWorkload converts the XML workload element to a core workload — the one
// decode path shared by the command-line tool and the tuning service's HTTP
// endpoint, so an XML session file works identically over both.
func ToWorkload(x *Workload) (*workload.Workload, error) {
	if x == nil || len(x.Statements) == 0 {
		return nil, fmt.Errorf("xmlio: input has no workload statements")
	}
	stmts := make([]workload.Statement, 0, len(x.Statements))
	for _, st := range x.Statements {
		stmts = append(stmts, workload.Statement{SQL: strings.TrimSpace(st.SQL), Weight: st.Weight})
	}
	return workload.FromStatements(stmts)
}

// FeatureMaskFromString parses the FeatureSet field.
func FeatureMaskFromString(s string) (core.FeatureMask, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "", "ALL", "IDX_MV_PARTITIONING":
		return core.FeatureAll, nil
	case "IDX":
		return core.FeatureIndexes, nil
	case "MV":
		return core.FeatureViews, nil
	case "PARTITIONING":
		return core.FeaturePartitioning, nil
	case "IDX_MV":
		return core.FeatureIndexes | core.FeatureViews, nil
	case "IDX_PARTITIONING":
		return core.FeatureIndexes | core.FeaturePartitioning, nil
	default:
		return 0, fmt.Errorf("xmlio: unknown feature set %q", s)
	}
}

// FeatureMaskToString renders a feature mask for the XML form.
func FeatureMaskToString(m core.FeatureMask) string {
	switch m {
	case core.FeatureAll, 0:
		return "ALL"
	case core.FeatureIndexes:
		return "IDX"
	case core.FeatureViews:
		return "MV"
	case core.FeaturePartitioning:
		return "PARTITIONING"
	case core.FeatureIndexes | core.FeatureViews:
		return "IDX_MV"
	case core.FeatureIndexes | core.FeaturePartitioning:
		return "IDX_PARTITIONING"
	default:
		return "ALL"
	}
}

// OptionsFromXML converts TuningOptions to core.Options.
func OptionsFromXML(x *TuningOptions) (core.Options, error) {
	var o core.Options
	if x == nil {
		return o, nil
	}
	m, err := FeatureMaskFromString(x.FeatureSet)
	if err != nil {
		return o, err
	}
	o.Features = m
	o.StorageBudget = x.StorageBudgetMB << 20
	o.Aligned = x.AlignedPartitioning
	o.TimeLimit = time.Duration(x.TimeLimitMinutes) * time.Minute
	o.NoCompression = x.DisableCompression
	o.GreedyM = x.GreedySeedSize
	o.GreedyK = x.MaxStructures
	o.AllowDrops = x.AllowDrops
	return o, nil
}
