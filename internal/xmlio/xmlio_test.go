package xmlio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

func sampleConfig() *catalog.Configuration {
	cfg := catalog.NewConfiguration()
	ix := catalog.NewIndex("orders", "o_custkey", "o_orderdate").WithInclude("o_totalprice")
	cfg.AddIndex(ix)
	cix := catalog.NewIndex("lineitem", "l_shipdate")
	cix.Clustered = true
	cix.Partitioning = catalog.NewPartitionScheme("l_shipdate", 100, 200, 300)
	cfg.AddIndex(cix)
	cfg.SetTablePartitioning("lineitem", catalog.NewPartitionScheme("l_shipdate", 100, 200, 300))
	cfg.AddView(catalog.NewMaterializedView(
		[]string{"orders", "lineitem"},
		[]catalog.JoinPred{{Left: catalog.NewColRef("orders", "o_orderkey"), Right: catalog.NewColRef("lineitem", "l_orderkey")}},
		[]catalog.ColRef{catalog.NewColRef("lineitem", "l_shipdate")},
		[]catalog.ColRef{catalog.NewColRef("orders", "o_orderpriority")},
		[]catalog.Agg{{Func: "COUNT"}, {Func: "SUM", Col: catalog.NewColRef("lineitem", "l_quantity")}},
		1234,
	))
	return cfg
}

func TestConfigurationRoundTrip(t *testing.T) {
	cfg := sampleConfig()
	x := FromConfiguration(cfg)
	back := ToConfiguration(x)
	if back.Key() != cfg.Key() {
		t.Fatalf("round trip changed the configuration:\n in: %s\nout: %s", cfg.Key(), back.Key())
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	doc := &DTAXML{
		Input: &Input{
			Server:    "prod",
			Databases: []string{"tpch"},
			Workload: &Workload{Statements: []Statement{
				{Weight: 5, SQL: "SELECT a FROM t WHERE x = 1"},
				{SQL: "UPDATE t SET a = 2 WHERE id = 3"},
			}},
			Options: &TuningOptions{
				FeatureSet:          "IDX_MV",
				StorageBudgetMB:     512,
				AlignedPartitioning: true,
				TimeLimitMinutes:    30,
			},
			Configuration: FromConfiguration(sampleConfig()),
		},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), Namespace) {
		t.Fatal("namespace missing")
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Input == nil || back.Input.Server != "prod" {
		t.Fatalf("input lost: %+v", back.Input)
	}
	if len(back.Input.Workload.Statements) != 2 || back.Input.Workload.Statements[0].Weight != 5 {
		t.Fatalf("workload lost: %+v", back.Input.Workload)
	}
	if !back.Input.Options.AlignedPartitioning || back.Input.Options.StorageBudgetMB != 512 {
		t.Fatalf("options lost: %+v", back.Input.Options)
	}
	cfg := ToConfiguration(back.Input.Configuration)
	if cfg.Key() != sampleConfig().Key() {
		t.Fatal("embedded configuration lost")
	}
}

func TestOptionsConversion(t *testing.T) {
	o, err := OptionsFromXML(&TuningOptions{FeatureSet: "IDX", StorageBudgetMB: 2, TimeLimitMinutes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if o.Features != core.FeatureIndexes || o.StorageBudget != 2<<20 {
		t.Fatalf("options = %+v", o)
	}
	if _, err := OptionsFromXML(&TuningOptions{FeatureSet: "BOGUS"}); err == nil {
		t.Fatal("bogus feature set must fail")
	}
	if o2, err := OptionsFromXML(nil); err != nil || o2.Features != 0 {
		t.Fatal("nil options should be zero values")
	}
	for _, m := range []core.FeatureMask{core.FeatureAll, core.FeatureIndexes, core.FeatureViews,
		core.FeaturePartitioning, core.FeatureIndexes | core.FeatureViews, core.FeatureIndexes | core.FeaturePartitioning} {
		s := FeatureMaskToString(m)
		back, err := FeatureMaskFromString(s)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if back != m && !(m == 0 && back == core.FeatureAll) {
			t.Fatalf("feature mask round trip: %v → %q → %v", m, s, back)
		}
	}
}

func TestFromRecommendation(t *testing.T) {
	rec := &core.Recommendation{
		Config:      sampleConfig(),
		BaseCost:    100,
		Cost:        40,
		Improvement: 0.6,
		Reports: []core.QueryReport{
			{SQL: "SELECT a FROM t", Weight: 1, CostBefore: 10, CostAfter: 4, UsedStructures: []string{"ix:t(a)"}},
		},
		NewStructures: sampleConfig().Structures(),
	}
	x := FromRecommendation(rec)
	if x.ImprovementPct != 60 {
		t.Fatalf("improvement = %g", x.ImprovementPct)
	}
	if len(x.DDL) != len(rec.NewStructures) {
		t.Fatalf("DDL entries = %d", len(x.DDL))
	}
	if len(x.Reports) != 1 || x.Reports[0].CostAfter != 4 {
		t.Fatalf("reports = %+v", x.Reports)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, &DTAXML{Output: &Output{Recommendation: x}}); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ToConfiguration(back.Output.Recommendation.Configuration)
	if cfg.Key() != sampleConfig().Key() {
		t.Fatal("recommendation configuration lost in round trip")
	}
}
