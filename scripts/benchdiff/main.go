// Command benchdiff compares a dtabench -json result against a committed
// baseline and fails on regression. It is the CI gate behind the committed
// BENCH_*_quick.json files: the deterministic fields (what-if calls,
// derived evaluations, ingest event counts) must match the baseline
// exactly, quality fields (improvement, ratio) must match to float
// round-off, and only the machine-dependent fields (wall clock, allocated
// MB) get a tolerance factor.
//
// Usage:
//
//	go run ./scripts/benchdiff -baseline BENCH_parallel_quick.json -current bench_parallel_quick.json
//
// Records are matched by (experiment, case). A record present in one file
// but not the other is a failure — silently gaining or losing a sweep case
// is itself a regression. Exit status 1 lists every problem found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline JSON (required)")
		currentPath  = flag.String("current", "", "freshly produced dtabench -json output (required)")
		wallTol      = flag.Float64("wall-tol", 20, "allowed wall-clock factor vs baseline (either direction); cases under -wall-min are skipped")
		wallMin      = flag.Int64("wall-min", 100, "wall-clock floor in ms below which timing noise dominates and the factor check is skipped")
		allocTol     = flag.Float64("alloc-tol", 4, "allowed allocated-MB factor vs baseline; cases under 1 MB are skipped")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}

	problems, err := Diff(*baselinePath, *currentPath, Tolerances{
		WallFactor: *wallTol, WallMinMS: *wallMin, AllocFactor: *allocTol,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %s vs %s: %d problem(s)\n", *currentPath, *baselinePath, len(problems))
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "  "+p)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s matches %s\n", *currentPath, *baselinePath)
}

// Tolerances bounds the machine-dependent fields; everything else is
// compared exactly (or to float round-off).
type Tolerances struct {
	// WallFactor is the allowed wall-clock ratio in either direction.
	WallFactor float64
	// WallMinMS skips the wall check when both sides are under it.
	WallMinMS int64
	// AllocFactor is the allowed allocated-MB ratio; sides under 1 MB skip.
	AllocFactor float64
}

// Diff loads both files and returns one message per mismatch (empty on a
// clean comparison).
func Diff(baselinePath, currentPath string, tol Tolerances) ([]string, error) {
	base, err := load(baselinePath)
	if err != nil {
		return nil, err
	}
	cur, err := load(currentPath)
	if err != nil {
		return nil, err
	}
	return compare(base, cur, tol), nil
}

func load(path string) ([]experiments.BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []experiments.BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func key(r experiments.BenchRecord) string { return r.Experiment + "/" + r.Case }

func compare(base, cur []experiments.BenchRecord, tol Tolerances) []string {
	var problems []string
	baseBy := map[string]experiments.BenchRecord{}
	for _, r := range base {
		baseBy[key(r)] = r
	}
	curBy := map[string]experiments.BenchRecord{}
	for _, r := range cur {
		curBy[key(r)] = r
	}
	for _, b := range base {
		if _, ok := curBy[key(b)]; !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from current run", key(b)))
		}
	}
	for _, c := range cur {
		b, ok := baseBy[key(c)]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: not in baseline", key(c)))
			continue
		}
		problems = append(problems, compareRecord(b, c, tol)...)
	}
	return problems
}

// relTol is the quality-field tolerance: the sweeps are deterministic, so
// improvement and ratio may differ only by float round-off.
const relTol = 1e-9

func compareRecord(b, c experiments.BenchRecord, tol Tolerances) []string {
	var problems []string
	k := key(b)
	if b.WhatIfCalls != c.WhatIfCalls {
		problems = append(problems, fmt.Sprintf("%s: whatIfCalls %d, baseline %d (exact match required)", k, c.WhatIfCalls, b.WhatIfCalls))
	}
	if b.DerivedEvals != c.DerivedEvals {
		problems = append(problems, fmt.Sprintf("%s: derivedEvals %d, baseline %d (exact match required)", k, c.DerivedEvals, b.DerivedEvals))
	}
	if b.Events != c.Events {
		problems = append(problems, fmt.Sprintf("%s: events %d, baseline %d (exact match required)", k, c.Events, b.Events))
	}
	if !closeRel(b.ImprovementPct, c.ImprovementPct) {
		problems = append(problems, fmt.Sprintf("%s: improvementPct %.9f, baseline %.9f", k, c.ImprovementPct, b.ImprovementPct))
	}
	if !closeRel(b.Ratio, c.Ratio) {
		problems = append(problems, fmt.Sprintf("%s: ratio %.9f, baseline %.9f", k, c.Ratio, b.Ratio))
	}
	if b.WallMS >= tol.WallMinMS || c.WallMS >= tol.WallMinMS {
		if f := factor(float64(b.WallMS), float64(c.WallMS)); f > tol.WallFactor {
			problems = append(problems, fmt.Sprintf("%s: wallMS %d vs baseline %d (%.1fx > %.1fx tolerance)", k, c.WallMS, b.WallMS, f, tol.WallFactor))
		}
	}
	if b.AllocMB >= 1 || c.AllocMB >= 1 {
		if f := factor(b.AllocMB, c.AllocMB); f > tol.AllocFactor {
			problems = append(problems, fmt.Sprintf("%s: allocMB %.1f vs baseline %.1f (%.1fx > %.1fx tolerance)", k, c.AllocMB, b.AllocMB, f, tol.AllocFactor))
		}
	}
	return problems
}

// closeRel reports whether two quality values agree to float round-off.
func closeRel(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= relTol*math.Max(math.Abs(a), math.Abs(b))
}

// factor is the larger-over-smaller ratio of two non-negative values; a
// zero on one side with a meaningful other side is reported as +Inf.
func factor(a, b float64) float64 {
	if a == b {
		return 1
	}
	lo, hi := math.Min(a, b), math.Max(a, b)
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}
