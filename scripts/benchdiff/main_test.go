package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func write(t *testing.T, dir, name string, recs []experiments.BenchRecord) string {
	t.Helper()
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var defaultTol = Tolerances{WallFactor: 20, WallMinMS: 100, AllocFactor: 4}

func baselineRecs() []experiments.BenchRecord {
	return []experiments.BenchRecord{
		{Experiment: "parallel", Case: "par=1", WallMS: 900, WhatIfCalls: 1234, DerivedEvals: 88, ImprovementPct: 41.5},
		{Experiment: "parallel", Case: "par=4", WallMS: 300, WhatIfCalls: 1234, DerivedEvals: 88, ImprovementPct: 41.5},
		{Experiment: "ingest", Case: "events=2000", WallMS: 40, Events: 2000, Ratio: 12.5, AllocMB: 3.2},
	}
}

func TestCleanComparison(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baselineRecs())

	// Same determinism fields, wall clock off by well under the factor,
	// quality off by pure round-off.
	cur := baselineRecs()
	cur[0].WallMS = 1800
	cur[1].ImprovementPct += 1e-12
	cur[2].AllocMB = 3.9
	c := write(t, dir, "cur.json", cur)

	problems, err := Diff(b, c, defaultTol)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean run reported problems: %v", problems)
	}
}

func TestExactFieldRegressions(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baselineRecs())

	cur := baselineRecs()
	cur[0].WhatIfCalls++         // call-count drift: always a failure
	cur[1].DerivedEvals = 0      // derivation stopped working
	cur[2].Events = 1999         // ingest lost an event
	cur[1].ImprovementPct = 40.0 // real quality regression
	c := write(t, dir, "cur.json", cur)

	problems, err := Diff(b, c, defaultTol)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"whatIfCalls", "derivedEvals", "events", "improvementPct"} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems missing a %s report:\n%s", want, joined)
		}
	}
	if len(problems) != 4 {
		t.Errorf("got %d problems, want 4:\n%s", len(problems), joined)
	}
}

func TestWallToleranceAndFloor(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baselineRecs())

	cur := baselineRecs()
	cur[0].WallMS = 900 * 25 // beyond the 20x factor on a >=100ms case
	cur[2].WallMS = 1        // under the floor on both sides: ignored
	c := write(t, dir, "cur.json", cur)

	problems, err := Diff(b, c, defaultTol)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "wallMS") {
		t.Fatalf("problems = %v, want exactly the par=1 wall report", problems)
	}
}

func TestAllocTolerance(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baselineRecs())
	cur := baselineRecs()
	cur[2].AllocMB = 3.2 * 5 // beyond the 4x factor
	c := write(t, dir, "cur.json", cur)

	problems, err := Diff(b, c, defaultTol)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "allocMB") {
		t.Fatalf("problems = %v, want exactly the alloc report", problems)
	}
}

func TestMissingAndExtraRecords(t *testing.T) {
	dir := t.TempDir()
	b := write(t, dir, "base.json", baselineRecs())
	cur := baselineRecs()[:2] // lost the ingest case
	cur = append(cur, experiments.BenchRecord{Experiment: "parallel", Case: "par=8"})
	c := write(t, dir, "cur.json", cur)

	problems, err := Diff(b, c, defaultTol)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, "ingest/events=2000: missing") {
		t.Errorf("lost case not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "parallel/par=8: not in baseline") {
		t.Errorf("extra case not reported:\n%s", joined)
	}
}

func TestBadInput(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "base.json", baselineRecs())
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(good, bad, defaultTol); err == nil {
		t.Fatal("malformed current file not rejected")
	}
	if _, err := Diff(filepath.Join(dir, "absent.json"), good, defaultTol); err == nil {
		t.Fatal("missing baseline not rejected")
	}
}
