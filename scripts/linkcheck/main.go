// Command linkcheck verifies the relative links in the repository's
// markdown documentation: every [text](target) whose target is a local
// path must point at a file that exists, and a #fragment — on a relative
// link or standing alone — must name a real heading's anchor in the target
// document (GitHub's slugification rules). External http(s) links are not
// fetched — the check is hermetic so CI stays deterministic and offline.
//
// Usage:
//
//	go run ./scripts/linkcheck [files-or-dirs...]
//
// With no arguments it checks README.md, DESIGN.md, EXPERIMENTS.md,
// ROADMAP.md, and every .md file under docs/.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRE matches inline markdown links; images share the syntax and are
// checked the same way.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "docs"}
	}
	var files []string
	for _, t := range targets {
		fi, err := os.Stat(t)
		if err != nil {
			if os.IsNotExist(err) {
				continue // optional roots (docs/ may not exist in a trimmed checkout)
			}
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		if !fi.IsDir() {
			files = append(files, t)
			continue
		}
		err = filepath.WalkDir(t, func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}

	anchorSets := map[string]map[string]bool{} // md file path → heading anchors
	anchors := func(path string) (map[string]bool, error) {
		if set, ok := anchorSets[path]; ok {
			return set, nil
		}
		set, err := headingAnchors(path)
		if err != nil {
			return nil, err
		}
		anchorSets[path] = set
		return set, nil
	}

	broken := 0
	report := func(f string, line int, link, detail string) {
		fmt.Printf("%s:%d: broken link %q (%s)\n", f, line, link, detail)
		broken++
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				path, frag, _ := strings.Cut(target, "#")
				resolved := f // pure-fragment links point into this document
				if path != "" {
					resolved = filepath.Join(filepath.Dir(f), path)
					if _, err := os.Stat(resolved); err != nil {
						report(f, i+1, m[1], resolved)
						continue
					}
				}
				if frag == "" || !strings.HasSuffix(resolved, ".md") {
					continue
				}
				set, err := anchors(resolved)
				if err != nil {
					fmt.Fprintln(os.Stderr, "linkcheck:", err)
					os.Exit(2)
				}
				if !set[frag] {
					report(f, i+1, m[1], "no heading in "+resolved+" slugifies to #"+frag)
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links\n", broken)
		os.Exit(1)
	}
}

// skip reports link targets outside the checker's scope: external URLs and
// mail links. In-page fragments are checked against this file's headings.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

// headingAnchors collects the GitHub anchor slug of every markdown heading
// in the file. Fenced code blocks are skipped — a shell comment is not a
// heading. Duplicate headings get the -1, -2, ... suffixes GitHub appends.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		level := 0
		for level < len(line) && line[level] == '#' {
			level++
		}
		if level > 6 || level == len(line) || line[level] != ' ' {
			continue
		}
		slug := slugify(line[level+1:])
		if n := counts[slug]; n > 0 {
			set[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			set[slug] = true
		}
		counts[slug]++
	}
	return set, nil
}

// slugify applies GitHub's heading-anchor rules: strip inline markdown
// markers, lowercase, drop everything but letters, digits, spaces, hyphens,
// and underscores, then turn each space into a hyphen (runs of spaces are
// not collapsed — "a — b" anchors as "a--b").
func slugify(heading string) string {
	heading = strings.TrimSpace(heading)
	heading = strings.NewReplacer("`", "", "*", "", "[", "", "]", "").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteRune('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}
