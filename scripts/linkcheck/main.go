// Command linkcheck verifies the relative links in the repository's
// markdown documentation: every [text](target) whose target is a local
// path must point at a file that exists. External http(s) links and pure
// fragment links are not fetched — the check is hermetic so CI stays
// deterministic and offline.
//
// Usage:
//
//	go run ./scripts/linkcheck [files-or-dirs...]
//
// With no arguments it checks README.md, DESIGN.md, EXPERIMENTS.md,
// ROADMAP.md, and every .md file under docs/.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links; images share the syntax and are
// checked the same way.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md", "docs"}
	}
	var files []string
	for _, t := range targets {
		fi, err := os.Stat(t)
		if err != nil {
			if os.IsNotExist(err) {
				continue // optional roots (docs/ may not exist in a trimmed checkout)
			}
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		if !fi.IsDir() {
			files = append(files, t)
			continue
		}
		err = filepath.WalkDir(t, func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if skip(target) {
					continue
				}
				target = strings.SplitN(target, "#", 2)[0]
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s:%d: broken link %q (%s)\n", f, i+1, m[1], resolved)
					broken++
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links\n", broken)
		os.Exit(1)
	}
}

// skip reports link targets outside the checker's scope: external URLs,
// mail links, and pure in-page fragments.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
