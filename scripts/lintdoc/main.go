// Command lintdoc enforces the repository's documentation contract:
//
//   - every exported identifier in the audited packages must carry a doc
//     comment, and
//   - every dta_* metric series registered in the sources must have a row
//     in the docs/OPERATIONS.md metrics reference, and every row there
//     must name a series that still exists (no waivers in either
//     direction).
//
// CI runs it on every push; a violation is a build failure, not a review
// nit.
//
// Usage:
//
//	go run ./scripts/lintdoc [-metrics-doc docs/OPERATIONS.md] [packages...]
//
// With no arguments it audits the packages the robustness PR put under
// contract: internal/core, internal/whatif, internal/service, internal/obs,
// internal/fault, internal/derive, internal/journal. Test files are
// skipped. The metrics cross-check always scans all of internal/ and cmd/;
// -metrics-doc "" disables it (for trimmed checkouts without docs/).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultPackages are the directories audited when none are given.
var defaultPackages = []string{
	"internal/core",
	"internal/whatif",
	"internal/service",
	"internal/obs",
	"internal/fault",
	"internal/derive",
	"internal/journal",
}

func main() {
	metricsDoc := flag.String("metrics-doc", "docs/OPERATIONS.md", "metrics reference to cross-check registered dta_* series against (\"\" disables)")
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultPackages
	}
	var problems []string
	for _, dir := range dirs {
		p, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdoc:", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	sort.Strings(problems)
	if *metricsDoc != "" {
		drift, err := metricsDrift([]string{"internal", "cmd"}, *metricsDoc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdoc:", err)
			os.Exit(2)
		}
		problems = append(problems, drift...)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and returns one
// problem line per exported identifier that lacks a doc comment.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					name := d.Name.Name
					if d.Recv != nil && len(d.Recv.List) > 0 {
						if rn, ok := receiverType(d.Recv.List[0].Type); ok {
							if !ast.IsExported(rn) {
								continue // method on an unexported type
							}
							name = rn + "." + name
						}
					}
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					report(d.Pos(), kind, name)
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// lintGenDecl checks type, const, and var declarations. A group-level doc
// comment covers every spec in the group (the idiom for const blocks); an
// undocumented exported spec in an undocumented group is reported.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	if kind == "" {
		return // imports
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// receiverType unwraps a method receiver to its type name.
func receiverType(expr ast.Expr) (string, bool) {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name, true
	case *ast.StarExpr:
		return receiverType(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverType(t.X)
	case *ast.IndexListExpr:
		return receiverType(t.X)
	}
	return "", false
}
