package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricRowRE matches an OPERATIONS.md metrics-table row whose first cell
// is a backticked series name: `| `dta_foo_total` | counter | ... |`.
// Mentions elsewhere in prose or in later cells do not count as
// documentation — only a dedicated row does.
var metricRowRE = regexp.MustCompile("^\\|\\s*`(dta_[a-z0-9_]+)`\\s*\\|")

// metricsDrift cross-checks the dta_* series registered in the Go sources
// against the rows of the operations reference: every registered series
// must have a table row, and every table row must correspond to a
// registered series. Either direction of drift is a failure — stale docs
// are as misleading as missing ones.
func metricsDrift(srcRoots []string, docPath string) ([]string, error) {
	registered, err := registeredSeries(srcRoots)
	if err != nil {
		return nil, err
	}
	documented, err := documentedSeries(docPath)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, name := range sortedKeys(registered) {
		if _, ok := documented[name]; !ok {
			problems = append(problems, fmt.Sprintf("%s: series %s (registered at %s) has no row in the metrics reference",
				docPath, name, registered[name]))
		}
	}
	for _, name := range sortedKeys(documented) {
		if _, ok := registered[name]; !ok {
			problems = append(problems, fmt.Sprintf("%s: series %s is documented but registered nowhere under %s",
				documented[name], name, strings.Join(srcRoots, ", ")))
		}
	}
	return problems, nil
}

// registeredSeries walks the source roots and collects every dta_* series
// name passed to a Counter/Gauge/Histogram registration call in a non-test
// file, mapped to the first file:line that registers it.
func registeredSeries(roots []string) (map[string]string, error) {
	out := map[string]string{}
	fset := token.NewFileSet()
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return err
			}
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Counter", "Gauge", "Histogram":
				default:
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || !strings.HasPrefix(name, "dta_") {
					return true
				}
				if _, seen := out[name]; !seen {
					p := fset.Position(lit.Pos())
					out[name] = fmt.Sprintf("%s:%d", filepath.ToSlash(p.Filename), p.Line)
				}
				return true
			})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// documentedSeries scans the operations reference for metrics-table rows,
// mapped to their file:line.
func documentedSeries(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		if m := metricRowRE.FindStringSubmatch(sc.Text()); m != nil {
			if _, seen := out[m[1]]; !seen {
				out[m[1]] = fmt.Sprintf("%s:%d", path, line)
			}
		}
	}
	return out, sc.Err()
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
